#include "mallard/storage/block_manager.h"

#include <cstring>

#include "mallard/common/checksum.h"
#include "mallard/common/serializer.h"
#include "mallard/resilience/fault_injector.h"
#include "mallard/resilience/retry_policy.h"

namespace mallard {

namespace {
constexpr uint64_t kMagic = 0x4D414C4C41524431ULL;  // "MALLARD1"
constexpr uint32_t kFormatVersion = 1;

struct RawHeader {
  uint64_t magic;
  uint32_t format_version;
  uint32_t padding;
  uint64_t iteration;
  int64_t meta_block;
  uint64_t block_count;
};
}  // namespace

Result<std::unique_ptr<BlockManager>> BlockManager::Open(
    const std::string& path, bool enable_checksums, bool* created) {
  bool exists = FileExists(path);
  MALLARD_ASSIGN_OR_RETURN(
      auto file, FileHandle::Open(path, FileHandle::kRead | FileHandle::kWrite |
                                            FileHandle::kCreate));
  auto manager = std::unique_ptr<BlockManager>(
      new BlockManager(std::move(file), enable_checksums));
  if (!exists) {
    *created = true;
    manager->header_ = DatabaseHeader{};
    // Write both header slots so either can be read back.
    MALLARD_RETURN_NOT_OK(manager->WriteHeaderSlot(0, manager->header_));
    MALLARD_RETURN_NOT_OK(manager->WriteHeaderSlot(1, manager->header_));
    MALLARD_RETURN_NOT_OK(manager->file_->Sync());
    return manager;
  }
  *created = false;
  DatabaseHeader h0, h1;
  bool v0 = false, v1 = false;
  MALLARD_RETURN_NOT_OK(manager->ReadHeaderSlot(0, &h0, &v0));
  MALLARD_RETURN_NOT_OK(manager->ReadHeaderSlot(1, &h1, &v1));
  if (!v0 && !v1) {
    return Status::Corruption("both database headers are corrupt in '" +
                              path + "'");
  }
  if (v0 && v1) {
    manager->header_ = h0.iteration >= h1.iteration ? h0 : h1;
  } else {
    manager->header_ = v0 ? h0 : h1;
  }
  return manager;
}

Status BlockManager::ReadHeaderSlot(int slot, DatabaseHeader* header,
                                    bool* valid) {
  *valid = false;
  MALLARD_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  if (size < (static_cast<uint64_t>(slot) + 1) * kBlockSize) {
    return Status::OK();  // slot not present; not valid but not an error
  }
  std::vector<uint8_t> buffer(kBlockSize);
  MALLARD_RETURN_NOT_OK(
      file_->Read(buffer.data(), kBlockSize, slot * kBlockSize));
  uint32_t stored_crc;
  std::memcpy(&stored_crc, buffer.data(), sizeof(uint32_t));
  uint32_t actual_crc =
      Crc32c(buffer.data() + sizeof(uint32_t), kBlockPayloadSize);
  if (stored_crc != actual_crc) {
    return Status::OK();  // corrupt slot; caller decides
  }
  RawHeader raw;
  std::memcpy(&raw, buffer.data() + sizeof(uint32_t), sizeof(RawHeader));
  if (raw.magic != kMagic || raw.format_version != kFormatVersion) {
    return Status::OK();
  }
  header->iteration = raw.iteration;
  header->meta_block = raw.meta_block;
  header->block_count = raw.block_count;
  *valid = true;
  return Status::OK();
}

Status BlockManager::WriteHeaderSlot(int slot, const DatabaseHeader& header) {
  std::vector<uint8_t> buffer(kBlockSize, 0);
  RawHeader raw;
  raw.magic = kMagic;
  raw.format_version = kFormatVersion;
  raw.padding = 0;
  raw.iteration = header.iteration;
  raw.meta_block = header.meta_block;
  raw.block_count = header.block_count;
  std::memcpy(buffer.data() + sizeof(uint32_t), &raw, sizeof(RawHeader));
  uint32_t crc = Crc32c(buffer.data() + sizeof(uint32_t), kBlockPayloadSize);
  std::memcpy(buffer.data(), &crc, sizeof(uint32_t));
  return file_->Write(buffer.data(), kBlockSize, slot * kBlockSize);
}

Status BlockManager::ReadBlock(block_id_t id, uint8_t* buffer) {
  std::vector<uint8_t> raw(kBlockSize);
  // Read + verify is one retryable unit: a checksum mismatch is re-read
  // from disk, which separates an in-flight flip (DRAM on the read path
  // — the next read is clean) from media damage (every read disagrees
  // with the stamped CRC and the error sticks as kCorruption).
  auto attempt = [&]() -> Status {
    MALLARD_RETURN_NOT_OK(
        file_->Read(raw.data(), kBlockSize, BlockOffset(id)));
    auto& injector = FaultInjector::Get();
    if (injector.ShouldFire(FaultSite::kBlockRead)) {
      injector.FlipRandomBit(raw.data(), kBlockSize);
    }
    if (enable_checksums_) {
      uint32_t stored_crc;
      std::memcpy(&stored_crc, raw.data(), sizeof(uint32_t));
      uint32_t actual_crc =
          Crc32c(raw.data() + sizeof(uint32_t), kBlockPayloadSize);
      if (stored_crc != actual_crc) {
        GlobalResilienceStats().block_checksum_failures.fetch_add(1);
        return Status::Corruption(
            "checksum mismatch reading block " + std::to_string(id) +
            ": persistent storage corruption detected");
      }
    }
    return Status::OK();
  };
  MALLARD_RETURN_NOT_OK(RetryPolicy().Execute(attempt, [](const Status& s) {
    return s.IsIOError() || s.IsCorruption();
  }));
  std::memcpy(buffer, raw.data() + sizeof(uint32_t), kBlockPayloadSize);
  return Status::OK();
}

Status BlockManager::WriteBlock(block_id_t id, const uint8_t* buffer) {
  std::vector<uint8_t> raw(kBlockSize);
  std::memcpy(raw.data() + sizeof(uint32_t), buffer, kBlockPayloadSize);
  auto& injector = FaultInjector::Get();
  uint32_t crc = Crc32c(raw.data() + sizeof(uint32_t), kBlockPayloadSize);
  std::memcpy(raw.data(), &crc, sizeof(uint32_t));
  if (injector.ShouldFire(FaultSite::kBlockWrite)) {
    // Bit flips after the checksum was computed model in-memory corruption
    // on the write path; they will be caught on the next read.
    injector.FlipRandomBit(raw.data() + sizeof(uint32_t), kBlockPayloadSize);
  }
  return file_->Write(raw.data(), kBlockSize, BlockOffset(id));
}

block_id_t BlockManager::AllocateBlock() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_blocks_.empty()) {
    block_id_t id = *free_blocks_.begin();
    free_blocks_.erase(free_blocks_.begin());
    return id;
  }
  return static_cast<block_id_t>(header_.block_count++);
}

void BlockManager::SetLiveBlocks(const std::set<block_id_t>& live) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_blocks_.clear();
  for (uint64_t i = 0; i < header_.block_count; i++) {
    block_id_t id = static_cast<block_id_t>(i);
    if (!live.count(id)) {
      free_blocks_.insert(id);
    }
  }
}

Status BlockManager::WriteHeader(block_id_t meta_block) {
  auto& injector = FaultInjector::Get();
  // Fire before any in-memory mutation so a failed root swap leaves the
  // manager consistent with the on-disk (old) root and a retry works.
  if (injector.ShouldFire(FaultSite::kCheckpointRootSwap)) {
    return Status::IOError("injected checkpoint root swap failure");
  }
  // Make sure all data blocks referenced by the new root are durable
  // before the root becomes visible.
  MALLARD_RETURN_NOT_OK(file_->Sync());
  if (injector.ShouldKill(FaultSite::kCheckpointRootSwap)) {
    // Power loss between data durability and the header flip: reopen
    // reads the old root; the WAL has not been truncated yet.
    FaultInjector::KillProcess();
  }
  header_.iteration++;
  header_.meta_block = meta_block;
  int slot = static_cast<int>(header_.iteration % 2);
  MALLARD_RETURN_NOT_OK(WriteHeaderSlot(slot, header_));
  return file_->Sync();
}

Status BlockManager::VerifyBlock(block_id_t id) {
  std::vector<uint8_t> raw(kBlockSize);
  MALLARD_RETURN_NOT_OK(file_->Read(raw.data(), kBlockSize, BlockOffset(id)));
  uint32_t stored_crc;
  std::memcpy(&stored_crc, raw.data(), sizeof(uint32_t));
  uint32_t actual_crc =
      Crc32c(raw.data() + sizeof(uint32_t), kBlockPayloadSize);
  if (stored_crc != actual_crc) {
    return Status::Corruption("checksum mismatch in block " +
                              std::to_string(id));
  }
  return Status::OK();
}

std::vector<block_id_t> BlockManager::LiveBlocks() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<block_id_t> live;
  live.reserve(header_.block_count - free_blocks_.size());
  for (uint64_t i = 0; i < header_.block_count; i++) {
    block_id_t id = static_cast<block_id_t>(i);
    if (!free_blocks_.count(id)) live.push_back(id);
  }
  return live;
}

Status BlockManager::CorruptBlockOnDisk(block_id_t id, uint64_t bit_index) {
  uint64_t offset = BlockOffset(id) + sizeof(uint32_t) + bit_index / 8;
  uint8_t byte;
  MALLARD_RETURN_NOT_OK(file_->Read(&byte, 1, offset));
  byte ^= uint8_t(1) << (bit_index % 8);
  MALLARD_RETURN_NOT_OK(file_->Write(&byte, 1, offset));
  return file_->Sync();
}

}  // namespace mallard
