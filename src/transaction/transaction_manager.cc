#include "mallard/transaction/transaction_manager.h"

#include <algorithm>

#include "mallard/storage/table/row_group.h"
#include "mallard/storage/wal.h"

namespace mallard {

std::unique_ptr<Transaction> TransactionManager::Begin() {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t txn_id = kTransactionIdBase + next_txn_offset_++;
  auto txn = std::make_unique<Transaction>(txn_id, commit_counter_);
  active_.push_back(txn.get());
  return txn;
}

void TransactionManager::StampCommitted(Transaction* txn,
                                        uint64_t commit_id) {
  // CommitAppend/CommitDelete take the row group's unique lock
  // internally; the direct UpdateInfo write needs it taken here.
  for (const auto& entry : txn->appends()) {
    entry.row_group->CommitAppend(commit_id, entry.start, entry.count);
  }
  for (const auto& entry : txn->deletes()) {
    entry.row_group->CommitDelete(commit_id, entry.rows);
  }
  for (const auto& entry : txn->updates()) {
    std::unique_lock<std::shared_mutex> guard(entry.row_group->lock());
    entry.info->version = commit_id;
  }
}

void TransactionManager::RemoveActive(Transaction* txn) {
  active_.erase(std::remove(active_.begin(), active_.end(), txn),
                active_.end());
}

TransactionManager::CommitBlock::CommitBlock(TransactionManager* manager)
    : manager_(manager) {
  manager_->commit_gate_.lock();
  manager_->commits_blocked_.store(true);
}

TransactionManager::CommitBlock::~CommitBlock() {
  manager_->commits_blocked_.store(false);
  manager_->commit_gate_.unlock();
}

Status TransactionManager::CommitInternal(Transaction* txn, bool write_wal) {
  // Shared commit gate, held from the WAL write through stamping: a
  // checkpoint (exclusive holder) can therefore never truncate the WAL
  // between a commit's durability and its visibility — the window in
  // which an acknowledged commit exists only in the log.
  std::shared_lock<std::shared_mutex> gate(commit_gate_);
  if (write_wal && wal_ && !txn->wal_records().empty()) {
    txn->wal_records().push_back(wal_record::Commit());
    // Deliberately outside mutex_: concurrent committers run into the
    // WAL's group-commit queue in parallel and share one fsync instead
    // of serializing the whole commit path on a per-commit sync.
    Status wal_status = wal_->WriteCommit(txn->wal_records());
    if (!wal_status.ok()) {
      // Durability cannot be guaranteed: abort instead of committing.
      gate.unlock();
      Rollback(txn);
      return Status::IOError("commit aborted, WAL write failed: " +
                             wal_status.message());
    }
  }
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t commit_id = ++commit_counter_;
  txn->set_commit_id(commit_id);
  StampCommitted(txn, commit_id);
  RemoveActive(txn);
  committed_++;
  // Periodic undo-chain garbage collection.
  if (cleanup_hook_ && (committed_ % 64 == 0 || active_.empty())) {
    uint64_t lowest = commit_counter_;
    for (const Transaction* t : active_) {
      lowest = std::min(lowest, t->start_id());
    }
    cleanup_hook_(lowest);
  }
  return Status::OK();
}

Status TransactionManager::Commit(Transaction* txn) {
  return CommitInternal(txn, /*write_wal=*/true);
}

Status TransactionManager::CommitWithoutWal(Transaction* txn) {
  return CommitInternal(txn, /*write_wal=*/false);
}

void TransactionManager::UndoAll(Transaction* txn) {
  // Undo in reverse order so later updates of the same row are rolled
  // back before earlier ones (each revert takes its row group's unique
  // lock internally).
  for (auto it = txn->updates().rbegin(); it != txn->updates().rend(); ++it) {
    it->row_group->RollbackUpdate(it->column_index, it->info);
  }
  for (const auto& entry : txn->deletes()) {
    entry.row_group->RevertDelete(entry.rows);
  }
  for (const auto& entry : txn->appends()) {
    entry.row_group->RevertAppend(entry.start, entry.count);
  }
}

void TransactionManager::Rollback(Transaction* txn) {
  std::lock_guard<std::mutex> guard(mutex_);
  UndoAll(txn);
  RemoveActive(txn);
}

uint64_t TransactionManager::LowestActiveStart() const {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t lowest = commit_counter_;
  for (const Transaction* t : active_) {
    lowest = std::min(lowest, t->start_id());
  }
  return lowest;
}

bool TransactionManager::HasActiveTransactions() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return !active_.empty();
}

}  // namespace mallard
