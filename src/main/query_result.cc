#include "mallard/main/query_result.h"

namespace mallard {

Value MaterializedQueryResult::GetValue(idx_t column, idx_t row) const {
  // Out-of-range access returns a NULL value instead of walking off the
  // chunk vector; so do rows whose chunk was already handed over via
  // Fetch() (the unique_ptr slot is moved-out then).
  if (column >= ColumnCount() || row >= row_count_) return Value();
  if (row < consumed_rows_) return Value();
  idx_t offset = consumed_rows_;
  for (idx_t i = fetch_position_; i < chunks_.size(); i++) {
    const auto& chunk = chunks_[i];
    if (row < offset + chunk->size()) {
      return chunk->GetValue(column, row - offset);
    }
    offset += chunk->size();
  }
  return Value();
}

Result<std::unique_ptr<DataChunk>> MaterializedQueryResult::Fetch() {
  if (fetch_position_ >= chunks_.size()) return std::unique_ptr<DataChunk>();
  auto chunk = std::move(chunks_[fetch_position_++]);
  consumed_rows_ += chunk->size();
  return chunk;
}

std::string MaterializedQueryResult::ToString(idx_t max_rows) const {
  std::string result;
  for (size_t i = 0; i < names_.size(); i++) {
    if (i > 0) result += "\t";
    result += names_[i];
  }
  result += "\n";
  idx_t printed = 0;
  for (const auto& chunk : chunks_) {
    if (!chunk) continue;  // handed over via Fetch()
    for (idx_t r = 0; r < chunk->size() && printed < max_rows; r++) {
      for (idx_t c = 0; c < chunk->ColumnCount(); c++) {
        if (c > 0) result += "\t";
        result += chunk->GetValue(c, r).ToString();
      }
      result += "\n";
      printed++;
    }
  }
  if (row_count_ > printed) {
    result += "... (" + std::to_string(row_count_) + " rows total)\n";
  }
  return result;
}

}  // namespace mallard
