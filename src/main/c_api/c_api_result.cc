// C ABI result accessors. An errored result (or a NULL handle) answers
// every accessor with a harmless default — 0 rows, 0 columns, NULL
// strings — so C callers can probe freely without pre-checking.

#include "c_api_internal.h"

#include "mallard/common/value.h"

namespace {

bool HasRows(mallard_result* result) {
  return result != nullptr && result->result != nullptr;
}

// Fetches (column, row) cast to `target`; NULL Value for SQL NULLs,
// out-of-range coordinates, or impossible casts.
mallard::Value GetCastValue(mallard_result* result, uint64_t column,
                            uint64_t row, mallard::TypeId target) {
  if (!HasRows(result)) return mallard::Value();
  mallard::Value value = result->result->GetValue(column, row);
  if (value.is_null()) return mallard::Value();
  auto cast = value.CastTo(target);
  if (!cast.ok()) return mallard::Value();
  return std::move(*cast);
}

}  // namespace

extern "C" {

void mallard_destroy_result(mallard_result** result) {
  if (result == nullptr || *result == nullptr) return;
  try {
    delete *result;
  } catch (...) {
  }
  *result = nullptr;
}

const char* mallard_result_error(mallard_result* result) {
  if (result == nullptr || !result->has_error) return nullptr;
  return result->error.c_str();
}

mallard_error_code mallard_result_error_code(mallard_result* result) {
  if (result == nullptr || !result->has_error) return MALLARD_ERROR_NONE;
  return result->error_code;
}

uint64_t mallard_row_count(mallard_result* result) {
  if (!HasRows(result)) return 0;
  return result->result->RowCount();
}

uint64_t mallard_column_count(mallard_result* result) {
  if (!HasRows(result)) return 0;
  return result->result->ColumnCount();
}

const char* mallard_column_name(mallard_result* result, uint64_t column) {
  if (!HasRows(result) || column >= result->result->names().size()) {
    return nullptr;
  }
  return result->result->names()[column].c_str();
}

mallard_type mallard_column_type(mallard_result* result, uint64_t column) {
  if (!HasRows(result) || column >= result->result->types().size()) {
    return MALLARD_TYPE_INVALID;
  }
  return mallard::c_api::ToCType(result->result->types()[column]);
}

bool mallard_value_is_null(mallard_result* result, uint64_t column,
                           uint64_t row) {
  try {
    if (!HasRows(result)) return true;
    // MaterializedQueryResult::GetValue reports out-of-range coordinates
    // as NULL values too, which matches the header contract.
    return result->result->GetValue(column, row).is_null();
  } catch (...) {
    return true;
  }
}

bool mallard_value_boolean(mallard_result* result, uint64_t column,
                           uint64_t row) {
  try {
    mallard::Value v =
        GetCastValue(result, column, row, mallard::TypeId::kBoolean);
    return v.is_null() ? false : v.GetBoolean();
  } catch (...) {
    return false;
  }
}

int32_t mallard_value_int32(mallard_result* result, uint64_t column,
                            uint64_t row) {
  try {
    mallard::Value v =
        GetCastValue(result, column, row, mallard::TypeId::kInteger);
    return v.is_null() ? 0 : v.GetInteger();
  } catch (...) {
    return 0;
  }
}

int64_t mallard_value_int64(mallard_result* result, uint64_t column,
                            uint64_t row) {
  try {
    mallard::Value v =
        GetCastValue(result, column, row, mallard::TypeId::kBigInt);
    return v.is_null() ? 0 : v.GetBigInt();
  } catch (...) {
    return 0;
  }
}

double mallard_value_double(mallard_result* result, uint64_t column,
                            uint64_t row) {
  try {
    mallard::Value v =
        GetCastValue(result, column, row, mallard::TypeId::kDouble);
    return v.is_null() ? 0.0 : v.GetDouble();
  } catch (...) {
    return 0.0;
  }
}

const char* mallard_value_varchar(mallard_result* result, uint64_t column,
                                  uint64_t row) {
  try {
    if (!HasRows(result)) return nullptr;
    auto key = std::make_pair(column, row);
    auto cached = result->string_cache.find(key);
    if (cached != result->string_cache.end()) return cached->second.c_str();
    mallard::Value value = result->result->GetValue(column, row);
    if (value.is_null()) return nullptr;
    std::string rendered = value.type() == mallard::TypeId::kVarchar
                               ? value.GetString()
                               : value.ToString();
    // std::map nodes are stable: the c_str() below survives later
    // insertions, which is what pins the string to the handle lifetime.
    auto inserted = result->string_cache.emplace(key, std::move(rendered));
    return inserted.first->second.c_str();
  } catch (...) {
    return nullptr;
  }
}

}  // extern "C"
