// C ABI prepared statements and streaming execution. Mirrors the C++
// PreparedStatement surface (Bind/Execute/ExecuteStream) with the C
// error model: state returns plus a per-handle latest-error slot, and
// a guarantee that closed/invalid handles error instead of crashing.

#include "c_api_internal.h"

#include "mallard/common/value.h"

using mallard::c_api::ConnectionLive;
using mallard::c_api::kClosedConnectionError;
using mallard::c_api::NewErrorResult;

namespace {

void SetError(mallard_prepared_statement* statement, std::string message) {
  statement->has_error = true;
  statement->error = std::move(message);
}

// Common preamble of bind/execute: validates the handle chain, records
// the failure on the statement when broken.
bool StatementReady(mallard_prepared_statement* statement) {
  if (statement == nullptr) return false;
  try {
    if (statement->statement == nullptr) {
      SetError(statement, "statement was not successfully prepared");
      return false;
    }
    if (!ConnectionLive(statement->connection)) {
      SetError(statement, kClosedConnectionError);
      return false;
    }
  } catch (...) {
    return false;
  }
  return true;
}

mallard_state BindValue(mallard_prepared_statement* statement, uint64_t index,
                        mallard::Value value) {
  if (!StatementReady(statement)) return MALLARD_ERROR;
  try {
    mallard::Status status =
        statement->statement->Bind(index, std::move(value));
    if (!status.ok()) {
      SetError(statement, status.ToString());
      return MALLARD_ERROR;
    }
    statement->has_error = false;
    return MALLARD_SUCCESS;
  } catch (const std::exception& e) {
    SetError(statement, std::string("internal exception: ") + e.what());
    return MALLARD_ERROR;
  } catch (...) {
    SetError(statement, "unknown internal exception");
    return MALLARD_ERROR;
  }
}

}  // namespace

extern "C" {

mallard_state mallard_prepare(mallard_connection* connection, const char* sql,
                              mallard_prepared_statement** out_statement) {
  if (out_statement == nullptr) return MALLARD_ERROR;
  *out_statement = nullptr;
  try {
    auto handle = std::make_unique<mallard_prepared_statement>();
    if (connection == nullptr || !ConnectionLive(connection->state)) {
      SetError(handle.get(), kClosedConnectionError);
      *out_statement = handle.release();
      return MALLARD_ERROR;
    }
    handle->connection = connection->state;
    if (sql == nullptr) {
      SetError(handle.get(), "sql string is NULL");
      *out_statement = handle.release();
      return MALLARD_ERROR;
    }
    auto prepared = connection->state->connection->Prepare(sql);
    if (!prepared.ok()) {
      SetError(handle.get(), prepared.status().ToString());
      *out_statement = handle.release();
      return MALLARD_ERROR;
    }
    handle->statement = std::move(*prepared);
    *out_statement = handle.release();
    return MALLARD_SUCCESS;
  } catch (...) {
    return MALLARD_ERROR;
  }
}

void mallard_destroy_prepare(mallard_prepared_statement** statement) {
  if (statement == nullptr || *statement == nullptr) return;
  try {
    delete *statement;
  } catch (...) {
  }
  *statement = nullptr;
}

const char* mallard_prepare_error(mallard_prepared_statement* statement) {
  if (statement == nullptr || !statement->has_error) return nullptr;
  return statement->error.c_str();
}

uint64_t mallard_nparams(mallard_prepared_statement* statement) {
  if (statement == nullptr || statement->statement == nullptr) return 0;
  return statement->statement->ParameterCount();
}

mallard_type mallard_param_type(mallard_prepared_statement* statement,
                                uint64_t index) {
  if (statement == nullptr || statement->statement == nullptr) {
    return MALLARD_TYPE_INVALID;
  }
  return mallard::c_api::ToCType(statement->statement->ParameterType(index));
}

mallard_state mallard_bind_null(mallard_prepared_statement* statement,
                                uint64_t index) {
  return BindValue(statement, index, mallard::Value());
}

mallard_state mallard_bind_boolean(mallard_prepared_statement* statement,
                                   uint64_t index, bool value) {
  return BindValue(statement, index, mallard::Value::Boolean(value));
}

mallard_state mallard_bind_int32(mallard_prepared_statement* statement,
                                 uint64_t index, int32_t value) {
  return BindValue(statement, index, mallard::Value::Integer(value));
}

mallard_state mallard_bind_int64(mallard_prepared_statement* statement,
                                 uint64_t index, int64_t value) {
  return BindValue(statement, index, mallard::Value::BigInt(value));
}

mallard_state mallard_bind_double(mallard_prepared_statement* statement,
                                  uint64_t index, double value) {
  return BindValue(statement, index, mallard::Value::Double(value));
}

mallard_state mallard_bind_varchar(mallard_prepared_statement* statement,
                                   uint64_t index, const char* value) {
  if (value == nullptr) {
    // Bind a typed NULL rather than dereferencing: C callers routinely
    // pass optional strings straight through.
    return mallard_bind_null(statement, index);
  }
  return BindValue(statement, index, mallard::Value::Varchar(value));
}

mallard_state mallard_execute_prepared(mallard_prepared_statement* statement,
                                       mallard_result** out_result) {
  if (out_result == nullptr) return MALLARD_ERROR;
  *out_result = nullptr;
  if (!StatementReady(statement)) {
    *out_result = NewErrorResult(
        statement != nullptr && statement->has_error ? statement->error
                                                     : "invalid statement");
    return MALLARD_ERROR;
  }
  try {
    auto result = statement->statement->Execute();
    if (!result.ok()) {
      SetError(statement, result.status().ToString());
      *out_result = NewErrorResult(
          statement->error,
          mallard::c_api::ToCErrorCode(result.status().code()));
      return MALLARD_ERROR;
    }
    statement->has_error = false;
    auto* handle = new mallard_result();
    handle->result = std::move(*result);
    *out_result = handle;
    return MALLARD_SUCCESS;
  } catch (const std::exception& e) {
    SetError(statement, std::string("internal exception: ") + e.what());
    *out_result = NewErrorResult(statement->error);
    return MALLARD_ERROR;
  } catch (...) {
    SetError(statement, "unknown internal exception");
    *out_result = NewErrorResult(statement->error);
    return MALLARD_ERROR;
  }
}

mallard_state mallard_execute_prepared_streaming(
    mallard_prepared_statement* statement, mallard_stream** out_stream) {
  if (out_stream == nullptr) return MALLARD_ERROR;
  *out_stream = nullptr;
  if (!StatementReady(statement)) return MALLARD_ERROR;
  try {
    auto result = statement->statement->ExecuteStream();
    if (!result.ok()) {
      SetError(statement, result.status().ToString());
      return MALLARD_ERROR;
    }
    statement->has_error = false;
    auto* handle = new mallard_stream();
    handle->connection = statement->connection;
    handle->statement = statement->statement;  // pins the borrowed plan
    handle->stream = std::move(*result);
    *out_stream = handle;
    return MALLARD_SUCCESS;
  } catch (const std::exception& e) {
    SetError(statement, std::string("internal exception: ") + e.what());
    return MALLARD_ERROR;
  } catch (...) {
    SetError(statement, "unknown internal exception");
    return MALLARD_ERROR;
  }
}

mallard_state mallard_stream_fetch_chunk(mallard_stream* stream,
                                         mallard_result** out_chunk) {
  if (out_chunk == nullptr) return MALLARD_ERROR;
  *out_chunk = nullptr;
  if (stream == nullptr) return MALLARD_ERROR;
  try {
    if (stream->stream == nullptr) {
      stream->has_error = true;
      stream->error = "stream is not open";
      return MALLARD_ERROR;
    }
    if (!ConnectionLive(stream->connection)) {
      stream->has_error = true;
      stream->error = kClosedConnectionError;
      return MALLARD_ERROR;
    }
    auto chunk = stream->stream->Fetch();
    if (!chunk.ok()) {
      stream->has_error = true;
      stream->error = chunk.status().ToString();
      return MALLARD_ERROR;
    }
    if (*chunk == nullptr) {
      // Exhausted: success with *out_chunk left NULL.
      return MALLARD_SUCCESS;
    }
    // Wrap the chunk as a single-chunk materialized result so the
    // regular accessors (and ownership rules) apply unchanged.
    std::vector<std::unique_ptr<mallard::DataChunk>> chunks;
    chunks.push_back(std::move(*chunk));
    auto* handle = new mallard_result();
    handle->result = std::make_unique<mallard::MaterializedQueryResult>(
        stream->stream->names(), stream->stream->types(), std::move(chunks));
    *out_chunk = handle;
    return MALLARD_SUCCESS;
  } catch (const std::exception& e) {
    stream->has_error = true;
    stream->error = std::string("internal exception: ") + e.what();
    return MALLARD_ERROR;
  } catch (...) {
    stream->has_error = true;
    stream->error = "unknown internal exception";
    return MALLARD_ERROR;
  }
}

const char* mallard_stream_error(mallard_stream* stream) {
  if (stream == nullptr || !stream->has_error) return nullptr;
  return stream->error.c_str();
}

void mallard_destroy_stream(mallard_stream** stream) {
  if (stream == nullptr || *stream == nullptr) return;
  try {
    delete *stream;
  } catch (...) {
  }
  *stream = nullptr;
}

}  // extern "C"
