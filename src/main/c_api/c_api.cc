// C ABI entry points: database/connection lifecycle and ad-hoc queries.
// Every function here upholds the two header guarantees: no exception
// crosses the boundary (each body is wrapped in try/catch) and NULL or
// closed handles degrade to an error return, never a crash.

#include "c_api_internal.h"

namespace mallard {
namespace c_api {

mallard_type ToCType(TypeId type) {
  switch (type) {
    case TypeId::kBoolean:
      return MALLARD_TYPE_BOOLEAN;
    case TypeId::kInteger:
      return MALLARD_TYPE_INTEGER;
    case TypeId::kBigInt:
      return MALLARD_TYPE_BIGINT;
    case TypeId::kDouble:
      return MALLARD_TYPE_DOUBLE;
    case TypeId::kVarchar:
      return MALLARD_TYPE_VARCHAR;
    case TypeId::kDate:
      return MALLARD_TYPE_DATE;
    case TypeId::kTimestamp:
      return MALLARD_TYPE_TIMESTAMP;
    case TypeId::kInvalid:
      break;
  }
  return MALLARD_TYPE_INVALID;
}

mallard_error_code ToCErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return MALLARD_ERROR_NONE;
    case StatusCode::kIOError:
      return MALLARD_ERROR_IO;
    case StatusCode::kCorruption:
      return MALLARD_ERROR_CORRUPTION;
    case StatusCode::kInterrupted:
      return MALLARD_ERROR_INTERRUPTED;
    case StatusCode::kHardwareFailure:
      return MALLARD_ERROR_HARDWARE;
    default:
      return MALLARD_ERROR_GENERIC;
  }
}

mallard_result* NewErrorResult(const std::string& message,
                               mallard_error_code code) {
  try {
    auto* result = new mallard_result();
    result->has_error = true;
    result->error = message;
    result->error_code = code;
    return result;
  } catch (...) {
    return nullptr;
  }
}

}  // namespace c_api
}  // namespace mallard

using mallard::c_api::ConnectionLive;
using mallard::c_api::kClosedConnectionError;
using mallard::c_api::NewErrorResult;

namespace {

// Failure channel for the two calls that have no handle to carry a
// message (open/connect). Thread-local, overwritten by the next
// open/connect on this thread — exactly the lifetime the header
// documents for mallard_open_error().
thread_local std::string t_open_error;
thread_local bool t_open_failed = false;

void SetOpenError(std::string message) {
  try {
    t_open_error = std::move(message);
    t_open_failed = true;
  } catch (...) {
    t_open_failed = false;  // message lost, but the state return stands
  }
}

void ClearOpenError() { t_open_failed = false; }

}  // namespace

extern "C" {

const char* mallard_version(void) { return "mallard 0.2.0"; }

const char* mallard_open_error(void) {
  return t_open_failed ? t_open_error.c_str() : nullptr;
}

mallard_state mallard_open(const char* path, mallard_database** out_database) {
  if (out_database == nullptr) return MALLARD_ERROR;
  *out_database = nullptr;
  try {
    auto db = mallard::Database::Open(path == nullptr ? "" : path);
    if (!db.ok()) {
      SetOpenError(db.status().ToString());
      return MALLARD_ERROR;
    }
    auto* handle = new mallard_database();
    handle->db = std::shared_ptr<mallard::Database>(std::move(*db));
    *out_database = handle;
    ClearOpenError();
    return MALLARD_SUCCESS;
  } catch (const std::exception& e) {
    SetOpenError(std::string("internal exception: ") + e.what());
    return MALLARD_ERROR;
  } catch (...) {
    SetOpenError("unknown internal exception");
    return MALLARD_ERROR;
  }
}

void mallard_close(mallard_database** database) {
  if (database == nullptr || *database == nullptr) return;
  try {
    delete *database;
  } catch (...) {
    // Swallow: a throwing shutdown must not propagate into C callers.
  }
  *database = nullptr;
}

mallard_state mallard_connect(mallard_database* database,
                              mallard_connection** out_connection) {
  if (out_connection == nullptr) return MALLARD_ERROR;
  *out_connection = nullptr;
  if (database == nullptr || database->db == nullptr) {
    SetOpenError("database handle is NULL or closed");
    return MALLARD_ERROR;
  }
  try {
    auto state = std::make_shared<mallard::c_api::ConnectionState>();
    state->db = database->db;
    state->connection = std::make_unique<mallard::Connection>(state->db.get());
    auto* handle = new mallard_connection();
    handle->state = std::move(state);
    *out_connection = handle;
    ClearOpenError();
    return MALLARD_SUCCESS;
  } catch (const std::exception& e) {
    SetOpenError(std::string("internal exception: ") + e.what());
    return MALLARD_ERROR;
  } catch (...) {
    SetOpenError("unknown internal exception");
    return MALLARD_ERROR;
  }
}

void mallard_disconnect(mallard_connection** connection) {
  if (connection == nullptr || *connection == nullptr) return;
  try {
    auto& state = (*connection)->state;
    if (state != nullptr) {
      // Roll back now, not at destruction: statements/streams still
      // holding the state keep the Connection alive arbitrarily long,
      // and the header promises the transaction dies at disconnect.
      if (state->connection != nullptr && state->connection->InTransaction()) {
        (void)state->connection->Rollback();
      }
      // Mark closed: surviving dependent handles must observe the
      // closure even though they keep the state alive.
      state->closed = true;
    }
    delete *connection;
  } catch (...) {
  }
  *connection = nullptr;
}

mallard_state mallard_interrupt(mallard_connection* connection) {
  try {
    if (connection == nullptr || !ConnectionLive(connection->state)) {
      return MALLARD_ERROR;
    }
    connection->state->connection->Interrupt();
    return MALLARD_SUCCESS;
  } catch (...) {
    return MALLARD_ERROR;
  }
}

mallard_state mallard_query(mallard_connection* connection, const char* sql,
                            mallard_result** out_result) {
  if (out_result == nullptr) return MALLARD_ERROR;
  *out_result = nullptr;
  try {
    if (connection == nullptr || !ConnectionLive(connection->state)) {
      *out_result = NewErrorResult(kClosedConnectionError);
      return MALLARD_ERROR;
    }
    if (sql == nullptr) {
      *out_result = NewErrorResult("sql string is NULL");
      return MALLARD_ERROR;
    }
    auto result = connection->state->connection->Query(sql);
    if (!result.ok()) {
      *out_result = NewErrorResult(
          result.status().ToString(),
          mallard::c_api::ToCErrorCode(result.status().code()));
      return MALLARD_ERROR;
    }
    auto* handle = new mallard_result();
    handle->result = std::move(*result);
    *out_result = handle;
    return MALLARD_SUCCESS;
  } catch (const std::exception& e) {
    *out_result = NewErrorResult(std::string("internal exception: ") +
                                 e.what());
    return MALLARD_ERROR;
  } catch (...) {
    *out_result = NewErrorResult("unknown internal exception");
    return MALLARD_ERROR;
  }
}

}  // extern "C"
