// Internal handle layout of the C ABI (src/include/mallard/c_api/mallard.h).
// This header is NOT part of the public surface: bindings see only the
// opaque typedefs; the structs below may change freely between versions.
//
// Lifetime model: handles reference-count the objects under them so the
// C side can destroy handles in any order. A ConnectionState outlives
// the `mallard_connection` wrapper for as long as statements or streams
// derived from it exist; mallard_disconnect() flips `closed`, which
// every later operation checks before touching the engine.
#ifndef MALLARD_MAIN_C_API_C_API_INTERNAL_H_
#define MALLARD_MAIN_C_API_C_API_INTERNAL_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "mallard/c_api/mallard.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/main/prepared_statement.h"
#include "mallard/main/query_result.h"

namespace mallard {
namespace c_api {

/// Connection plus everything it needs to stay valid. Declaration order
/// matters: members are destroyed bottom-up, so the Connection goes
/// before the Database it points into.
struct ConnectionState {
  std::shared_ptr<Database> db;
  std::unique_ptr<Connection> connection;
  /// Set by mallard_disconnect(); operations on dependent handles check
  /// this and fail with "connection is closed" instead of executing.
  bool closed = false;
};

/// Maps the engine's TypeId onto the frozen C enum.
mallard_type ToCType(TypeId type);

/// Maps the engine's StatusCode onto the frozen C error-class enum.
mallard_error_code ToCErrorCode(StatusCode code);

/// Allocates an errored mallard_result carrying `message` and an error
/// class (never throws; returns nullptr if even the allocation fails).
mallard_result* NewErrorResult(const std::string& message,
                               mallard_error_code code = MALLARD_ERROR_GENERIC);

/// True when the handle chain down to the engine Connection is intact
/// and not closed.
inline bool ConnectionLive(const std::shared_ptr<ConnectionState>& state) {
  return state != nullptr && !state->closed && state->connection != nullptr;
}

constexpr char kClosedConnectionError[] = "connection is closed";

}  // namespace c_api
}  // namespace mallard

// --- Opaque handle definitions (layouts private to src/main/c_api/) ---

struct mallard_database {
  std::shared_ptr<mallard::Database> db;
};

struct mallard_connection {
  std::shared_ptr<mallard::c_api::ConnectionState> state;
};

struct mallard_result {
  // Null when the result carries an error instead of rows.
  std::unique_ptr<mallard::MaterializedQueryResult> result;
  bool has_error = false;
  std::string error;
  mallard_error_code error_code = MALLARD_ERROR_NONE;
  // Backing store for mallard_value_varchar(): the C contract is that
  // returned strings live as long as the result handle, so rendered
  // values are cached here keyed by (column, row). std::map nodes are
  // stable, so handed-out c_str() pointers survive later lookups.
  std::map<std::pair<uint64_t, uint64_t>, std::string> string_cache;
};

struct mallard_prepared_statement {
  // Keeps the connection (and through it the database) alive; declared
  // before the statement so the statement is destroyed first.
  std::shared_ptr<mallard::c_api::ConnectionState> connection;
  // Shared (not unique) so open streams can pin the plan they borrow.
  // Null when Prepare itself failed.
  std::shared_ptr<mallard::PreparedStatement> statement;
  bool has_error = false;
  std::string error;  // latest prepare/bind/execute failure
};

struct mallard_stream {
  // Destruction order (bottom-up): stream first — its Close() touches
  // both the borrowed plan and the connection — then statement, then
  // connection state.
  std::shared_ptr<mallard::c_api::ConnectionState> connection;
  std::shared_ptr<mallard::PreparedStatement> statement;
  std::unique_ptr<mallard::StreamingQueryResult> stream;
  bool has_error = false;
  std::string error;
};

#endif  // MALLARD_MAIN_C_API_C_API_INTERNAL_H_
