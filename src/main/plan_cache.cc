#include "mallard/main/plan_cache.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>

#include "mallard/common/string_util.h"

namespace mallard {

namespace {

bool IsWordIn(const std::string& upper, std::initializer_list<const char*> set) {
  for (const char* word : set) {
    if (upper == word) return true;
  }
  return false;
}

/// Keywords after which a `-` starts a unary (foldable) negative literal
/// rather than binary subtraction. Misclassification is safe either way:
/// a wrongly-binary minus leaves `0 - ?` arithmetic with identical
/// results, a wrongly-unary one produces SQL the parser rejects and the
/// caller falls back to the uncached path.
bool KeywordLeadsExpression(const std::string& upper) {
  return IsWordIn(upper,
                  {"SELECT", "WHERE", "AND", "OR", "NOT", "BY", "THEN", "ELSE",
                   "WHEN", "HAVING", "ON", "IN", "VALUES", "SET", "DISTINCT",
                   "ALL", "BETWEEN", "LIKE", "CASE", "RETURNING"});
}

}  // namespace

NormalizedQuery NormalizeQueryText(const std::string& sql) {
  NormalizedQuery out;
  struct Span {
    size_t begin;
    size_t end;
  };
  std::vector<Span> spans;
  std::vector<Value> values;
  std::string tags;

  const size_t n = sql.size();
  size_t i = 0;

  // Layout = whitespace and -- comments, exactly as the lexer skips them.
  auto skip_layout = [&] {
    while (i < n) {
      char c = sql[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        i++;
        continue;
      }
      if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
        while (i < n && sql[i] != '\n') i++;
        continue;
      }
      break;
    }
  };

  // What the previous meaningful token was — drives the unary-minus and
  // literal-position decisions below.
  enum class Prev {
    kNone,
    kIdent,   // identifier or quoted identifier (prev_upper set)
    kValue,   // literal
    kOp,      // comparison operator
    kOpen,    // (
    kClose,   // )
    kComma,
    kArith,   // * + - / % .
    kOther
  };
  Prev prev = Prev::kNone;
  std::string prev_upper;
  bool first_token = true;
  // CAST(x AS TYPE(...)): the parser skips every token inside the type's
  // parentheses up to the first ')', so literals there must stay put.
  bool as_seen = false;          // previous token was AS
  bool as_type_pending = false;  // previous tokens were AS <identifier>
  bool in_cast_type = false;     // between the type's '(' and its ')'

  auto scan_number = [&](bool* is_float) -> std::string {
    size_t start = i;
    *is_float = false;
    while (i < n &&
           (std::isdigit(static_cast<unsigned char>(sql[i])) ||
            sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
            ((sql[i] == '+' || sql[i] == '-') && i > start &&
             (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
      if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') *is_float = true;
      i++;
    }
    return sql.substr(start, i - start);
  };
  // The parser's literal typing: int32-fitting integers are Integer,
  // larger ones BigInt, floats Double; a folded unary minus negates
  // after classifying the positive text (so -2147483648 stays BigInt,
  // exactly like ParseUnary over ParsePrimary).
  auto number_value = [](const std::string& text, bool is_float,
                         bool negate) -> std::pair<Value, char> {
    if (is_float) {
      double v = std::strtod(text.c_str(), nullptr);
      return {Value::Double(negate ? -v : v), 'd'};
    }
    int64_t v = std::strtoll(text.c_str(), nullptr, 10);
    if (v >= INT32_MIN && v <= INT32_MAX) {
      int32_t iv = static_cast<int32_t>(v);
      return {Value::Integer(negate ? -iv : iv), 'i'};
    }
    return {Value::BigInt(negate ? -v : v), 'l'};
  };

  while (true) {
    skip_layout();
    if (i >= n) break;
    char c = sql[i];

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        i++;
      }
      std::string word = StringUtil::Upper(sql.substr(start, i - start));
      if (first_token) {
        // Only plannable single statements are worth caching; everything
        // else (DDL, PRAGMA, COPY, transactions) bypasses the cache.
        if (!IsWordIn(word, {"SELECT", "INSERT", "UPDATE", "DELETE"})) {
          return out;
        }
        first_token = false;
      }
      // read_csv scans a file whose contents can change between
      // executions — never cache the plan.
      if (word == "READ_CSV") return out;
      as_type_pending = as_seen;
      as_seen = (word == "AS");
      prev = Prev::kIdent;
      prev_upper = std::move(word);
      continue;
    }
    if (first_token) return out;  // the parser would reject it anyway

    if (c == '"') {  // quoted identifier — never a keyword
      i++;
      while (i < n && sql[i] != '"') i++;
      if (i >= n) return out;  // unterminated
      i++;
      as_type_pending = as_seen;
      as_seen = false;
      prev = Prev::kIdent;
      prev_upper.clear();
      continue;
    }

    if (c == '\'') {
      size_t start = i;
      std::string value;
      i++;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          i++;
          break;
        }
        value += sql[i++];
      }
      if (!closed) return out;
      // DATE/TIMESTAMP/INTERVAL '...' demand a real string token.
      bool keep = in_cast_type ||
                  (prev == Prev::kIdent &&
                   IsWordIn(prev_upper, {"DATE", "TIMESTAMP", "INTERVAL"}));
      if (!keep) {
        spans.push_back({start, i});
        values.push_back(Value::Varchar(value));
        tags += 's';
      }
      prev = Prev::kValue;
      prev_upper.clear();
      as_seen = as_type_pending = false;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      std::string text = scan_number(&is_float);
      // LIMIT/OFFSET/INTERVAL demand a real integer token.
      bool keep = in_cast_type ||
                  (prev == Prev::kIdent &&
                   IsWordIn(prev_upper, {"LIMIT", "OFFSET", "INTERVAL"}));
      if (!keep) {
        auto typed = number_value(text, is_float, /*negate=*/false);
        spans.push_back({start, i});
        values.push_back(std::move(typed.first));
        tags += typed.second;
      }
      prev = Prev::kValue;
      prev_upper.clear();
      as_seen = as_type_pending = false;
      continue;
    }

    // Explicit parameters: this text belongs to Prepare, not the
    // transparent cache (mixing would renumber the user's slots).
    if (c == '?' || c == '$') return out;

    if (c == '<' || c == '>' || c == '=' || c == '!') {
      i++;
      if (i < n && (sql[i] == '=' || (c == '<' && sql[i] == '>'))) i++;
      prev = Prev::kOp;
      prev_upper.clear();
      as_seen = as_type_pending = false;
      continue;
    }

    if (c == '-') {
      // Not a comment (skip_layout ran): a lone minus. In unary position
      // it folds into the following numeric literal, mirroring
      // ParseUnary; in binary position it stays subtraction and the
      // operand is parameterized on its own.
      bool unary = prev == Prev::kNone || prev == Prev::kOp ||
                   prev == Prev::kOpen || prev == Prev::kComma ||
                   prev == Prev::kArith ||
                   (prev == Prev::kIdent && KeywordLeadsExpression(prev_upper));
      size_t minus_pos = i;
      i++;
      if (unary && !in_cast_type) {
        size_t resume = i;
        skip_layout();
        if (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                      (sql[i] == '.' && i + 1 < n &&
                       std::isdigit(static_cast<unsigned char>(sql[i + 1]))))) {
          bool is_float = false;
          std::string text = scan_number(&is_float);
          auto typed = number_value(text, is_float, /*negate=*/true);
          spans.push_back({minus_pos, i});
          values.push_back(std::move(typed.first));
          tags += typed.second;
          prev = Prev::kValue;
          prev_upper.clear();
          as_seen = as_type_pending = false;
          continue;
        }
        i = resume;  // `- identifier` etc.: plain arithmetic
      }
      prev = Prev::kArith;
      prev_upper.clear();
      as_seen = as_type_pending = false;
      continue;
    }

    switch (c) {
      case '(':
        if (as_type_pending) in_cast_type = true;
        prev = Prev::kOpen;
        break;
      case ')':
        in_cast_type = false;
        prev = Prev::kClose;
        break;
      case ',':
        prev = Prev::kComma;
        break;
      case '*':
      case '+':
      case '/':
      case '%':
      case '.':
        prev = Prev::kArith;
        break;
      case ';': {
        // Only a trailing semicolon is cacheable — the shared cache
        // holds exactly one plan per entry.
        size_t rest = ++i;
        i = rest;
        skip_layout();
        if (i < n) return out;
        prev = Prev::kOther;
        continue;
      }
      default:
        return out;  // the lexer would reject this character
    }
    i++;
    prev_upper.clear();
    as_seen = as_type_pending = false;
    continue;
  }

  if (first_token) return out;  // empty statement

  out.normalized_sql.reserve(sql.size());
  size_t cursor = 0;
  for (const auto& span : spans) {
    out.normalized_sql.append(sql, cursor, span.begin - cursor);
    out.normalized_sql += '?';
    cursor = span.end;
  }
  out.normalized_sql.append(sql, cursor, sql.size() - cursor);
  // '\x01' cannot appear in tokenizable SQL, so key collisions between
  // different (sql, tags) pairs are impossible.
  out.key = out.normalized_sql + '\x01' + tags;
  out.literals = std::move(values);
  out.cacheable = true;
  return out;
}

// ---------------------------------------------------------------------------

SharedPlanCache::Entry* SharedPlanCache::Acquire(const std::string& key,
                                                 bool* busy) {
  *busy = false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.misses++;
    return nullptr;
  }
  Entry* entry = it->second.get();
  if (entry->in_use) {
    // Plans hold mutable operator state: one execution at a time. The
    // loser plans fresh and uncached instead of waiting.
    stats_.busy_skips++;
    *busy = true;
    return nullptr;
  }
  stats_.hits++;
  entry->in_use = true;
  lru_.splice(lru_.begin(), lru_, entry->lru_pos);
  return entry;
}

std::unique_ptr<SharedPlanCache::Entry> SharedPlanCache::Detach(Entry* entry) {
  auto it = entries_.find(entry->key);
  std::unique_ptr<Entry> owned = std::move(it->second);
  entries_.erase(it);
  lru_.erase(entry->lru_pos);
  return owned;
}

void SharedPlanCache::Release(Entry* entry, bool keep) {
  std::unique_ptr<Entry> reaped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entry->in_use = false;
    if (entry->orphaned) {
      for (auto it = orphans_.begin(); it != orphans_.end(); ++it) {
        if (it->get() == entry) {
          reaped = std::move(*it);
          orphans_.erase(it);
          break;
        }
      }
    } else if (!keep) {
      reaped = Detach(entry);
      stats_.evictions++;
    } else {
      lru_.splice(lru_.begin(), lru_, entry->lru_pos);
    }
    stats_.entries = entries_.size();
  }
  // `reaped` destroys the plan outside the lock.
}

SharedPlanCache::Entry* SharedPlanCache::Insert(std::unique_ptr<Entry> entry) {
  Entry* raw = entry.get();
  raw->in_use = true;
  std::vector<std::unique_ptr<Entry>> evicted;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(raw->key);
  if (it != entries_.end()) {
    // Two connections planned the same miss concurrently; the resident
    // entry wins if idle (drop ours after this execution), ours replaces
    // it otherwise is impossible to file — run it orphaned either way.
    raw->orphaned = true;
    orphans_.push_back(std::move(entry));
    return raw;
  }
  while (entries_.size() >= capacity_ && !lru_.empty()) {
    // Evict from the cold end, skipping entries mid-execution.
    bool evicted_one = false;
    for (auto lru_it = lru_.rbegin(); lru_it != lru_.rend(); ++lru_it) {
      if (!(*lru_it)->in_use) {
        evicted.push_back(Detach(*lru_it));
        stats_.evictions++;
        evicted_one = true;
        break;
      }
    }
    if (!evicted_one) break;  // everything busy: admit over capacity
  }
  raw->lru_pos = lru_.insert(lru_.begin(), raw);
  entries_.emplace(raw->key, std::move(entry));
  stats_.entries = entries_.size();
  return raw;
}

void SharedPlanCache::Clear() {
  std::vector<std::unique_ptr<Entry>> reaped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& pair : entries_) {
      if (pair.second->in_use) {
        pair.second->orphaned = true;
        orphans_.push_back(std::move(pair.second));
      } else {
        reaped.push_back(std::move(pair.second));
      }
    }
    entries_.clear();
    lru_.clear();
    stats_.entries = 0;
  }
}

idx_t SharedPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

PlanCacheStats SharedPlanCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats stats = stats_;
  stats.entries = entries_.size();
  return stats;
}

void SharedPlanCache::RecordUncacheable() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.uncacheable++;
}

void SharedPlanCache::RecordInvalidation() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.invalidations++;
}

}  // namespace mallard
