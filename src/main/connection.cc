#include "mallard/main/connection.h"

#include <cerrno>
#include <cstdlib>

#include "mallard/common/string_util.h"
#include "mallard/etl/csv.h"
#include "mallard/main/prepared_statement.h"
#include "mallard/parallel/morsel.h"
#include "mallard/parser/parser.h"
#include "mallard/planner/planner.h"
#include "mallard/storage/table/column_segment.h"

namespace mallard {

Connection::Connection(Database* db) : db_(db) {}

Connection::~Connection() {
  if (transaction_) {
    db_->transactions().Rollback(transaction_.get());
  }
}

Status Connection::BeginTransaction() {
  if (transaction_) {
    return Status::TransactionContext("transaction already active");
  }
  transaction_ = db_->transactions().Begin();
  return Status::OK();
}

Status Connection::Commit() {
  if (!transaction_) {
    return Status::TransactionContext("no transaction active");
  }
  Status status = db_->transactions().Commit(transaction_.get());
  transaction_.reset();
  return status;
}

Status Connection::Rollback() {
  if (!transaction_) {
    return Status::TransactionContext("no transaction active");
  }
  db_->transactions().Rollback(transaction_.get());
  transaction_.reset();
  return Status::OK();
}

Result<Transaction*> Connection::ActiveTransaction(bool* started) {
  if (transaction_) {
    *started = false;
    return transaction_.get();
  }
  transaction_ = db_->transactions().Begin();
  *started = true;
  return transaction_.get();
}

Status Connection::FinishAutocommit(bool started, bool success) {
  if (!started) return Status::OK();
  Status status = Status::OK();
  if (success) {
    status = db_->transactions().Commit(transaction_.get());
  } else {
    db_->transactions().Rollback(transaction_.get());
  }
  transaction_.reset();
  return status;
}

namespace {
bool IsPlanCacheable(StatementType type) {
  switch (type) {
    case StatementType::kSelect:
    case StatementType::kInsert:
    case StatementType::kUpdate:
    case StatementType::kDelete:
      return true;
    default:
      return false;
  }
}
}  // namespace

Result<std::unique_ptr<MaterializedQueryResult>> Connection::Query(
    const std::string& sql) {
  if (plan_cache_enabled_) {
    auto it = plan_cache_.find(sql);
    if (it != plan_cache_.end()) {
      // Cache hit: skip parse-bind-plan entirely; the statement rewinds
      // its plan (and transparently re-plans after DDL) on Execute.
      it->second.last_used = ++plan_cache_tick_;
      auto result = it->second.statement->Execute();
      if (!result.ok() ||
          !it->second.statement->ClearExecutionState().ok()) {
        // A failing entry (e.g. its table was dropped) is not worth
        // keeping; the next Query re-plans from scratch.
        plan_cache_.erase(it);
      }
      return result;
    }
  }
  MALLARD_ASSIGN_OR_RETURN(auto statements, Parser::Parse(sql));
  if (statements.empty()) {
    return Status::InvalidArgument("no statements to execute");
  }
  if (plan_cache_enabled_ && statements.size() == 1 &&
      IsPlanCacheable(statements[0]->type)) {
    MALLARD_ASSIGN_OR_RETURN(auto prepared,
                             PreparePlanned(std::move(statements[0])));
    auto result = prepared->Execute();
    // Idle cached plans must not pin their last execution's operator
    // state (join build tables live in non-spillable buffer segments).
    if (result.ok() && prepared->ClearExecutionState().ok()) {
      if (plan_cache_.size() >= kPlanCacheCapacity) {
        auto victim = plan_cache_.begin();
        for (auto e = plan_cache_.begin(); e != plan_cache_.end(); ++e) {
          if (e->second.last_used < victim->second.last_used) victim = e;
        }
        plan_cache_.erase(victim);
      }
      plan_cache_.emplace(
          sql, PlanCacheEntry{std::move(prepared), ++plan_cache_tick_});
    }
    return result;
  }
  std::unique_ptr<MaterializedQueryResult> result;
  for (auto& stmt : statements) {
    MALLARD_ASSIGN_OR_RETURN(result, ExecuteStatement(stmt.get()));
  }
  return result;
}

Result<std::unique_ptr<PreparedStatement>> Connection::PreparePlanned(
    std::unique_ptr<SQLStatement> statement) {
  // Planned without parameter data: a stray `?` placeholder fails with
  // the same binder error the uncached Query path produced.
  Planner planner(&db_->catalog(), &db_->governor());
  uint64_t catalog_version = db_->catalog().version();
  MALLARD_ASSIGN_OR_RETURN(auto plan, planner.PlanStatement(*statement));
  return std::unique_ptr<PreparedStatement>(new PreparedStatement(
      this, std::move(statement), std::make_shared<BoundParameterData>(),
      std::move(plan), catalog_version));
}

Result<std::unique_ptr<MaterializedQueryResult>>
Connection::ExecutePhysicalPlan(PhysicalOperator* plan,
                                const std::vector<std::string>& names,
                                const std::vector<TypeId>& types) {
  bool started = false;
  MALLARD_ASSIGN_OR_RETURN(Transaction * txn, ActiveTransaction(&started));
  ExecutionContext context;
  context.txn = txn;
  context.buffers = &db_->buffers();
  context.governor = &db_->governor();
  context.scheduler = &db_->scheduler();
  context.thread_limit = thread_override_;
  std::vector<std::unique_ptr<DataChunk>> chunks;
  Status status = Status::OK();
  while (true) {
    auto chunk = std::make_unique<DataChunk>();
    chunk->Initialize(types);
    status = plan->GetChunk(&context, chunk.get());
    if (!status.ok()) break;
    if (chunk->size() == 0) break;
    chunks.push_back(std::move(chunk));
  }
  if (!status.ok()) {
    if (status.IsTransactionConflict()) db_->transactions().CountConflict();
    Status finish = FinishAutocommit(started, false);
    (void)finish;
    // A failed statement inside an explicit transaction poisons it.
    if (!started && transaction_) {
      db_->transactions().Rollback(transaction_.get());
      transaction_.reset();
    }
    return status;
  }
  MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
  return std::make_unique<MaterializedQueryResult>(names, types,
                                                   std::move(chunks));
}

Result<std::unique_ptr<MaterializedQueryResult>> Connection::ExecutePlan(
    PreparedPlan prepared) {
  return ExecutePhysicalPlan(prepared.plan.get(), prepared.names,
                             prepared.types);
}

namespace {
std::unique_ptr<MaterializedQueryResult> SingleValueResult(
    const std::string& name, Value value) {
  auto chunk = std::make_unique<DataChunk>();
  chunk->Initialize({value.type()});
  chunk->SetValue(0, 0, value);
  chunk->SetCardinality(1);
  std::vector<std::unique_ptr<DataChunk>> chunks;
  chunks.push_back(std::move(chunk));
  return std::make_unique<MaterializedQueryResult>(
      std::vector<std::string>{name}, std::vector<TypeId>{value.type()},
      std::move(chunks));
}
}  // namespace

Result<std::unique_ptr<MaterializedQueryResult>> Connection::ExecuteStatement(
    SQLStatement* stmt) {
  Planner planner(&db_->catalog(), &db_->governor());
  switch (stmt->type) {
    // Plannable statements share one prepare-then-execute pipeline with
    // SendQuery and Connection::Prepare.
    case StatementType::kSelect:
    case StatementType::kInsert:
    case StatementType::kUpdate:
    case StatementType::kDelete: {
      MALLARD_ASSIGN_OR_RETURN(auto plan, planner.PlanStatement(*stmt));
      return ExecutePlan(std::move(plan));
    }
    case StatementType::kCreateTable: {
      auto& create = static_cast<CreateTableStatement&>(*stmt);
      if (create.as_select) {
        // CTAS: plan the select, create the table, insert.
        MALLARD_ASSIGN_OR_RETURN(auto sub,
                                 planner.PlanSelect(*create.as_select));
        std::vector<ColumnDefinition> columns;
        for (idx_t i = 0; i < sub.names.size(); i++) {
          columns.emplace_back(sub.names[i], sub.types[i]);
        }
        MALLARD_RETURN_NOT_OK(db_->catalog().CreateTable(
            create.name, columns, create.if_not_exists));
        bool started = false;
        MALLARD_ASSIGN_OR_RETURN(Transaction * txn,
                                 ActiveTransaction(&started));
        txn->wal_records().push_back(
            wal_record::CreateTable(create.name, columns));
        MALLARD_ASSIGN_OR_RETURN(DataTable * table,
                                 db_->catalog().GetTable(create.name));
        ExecutionContext context;
        context.txn = txn;
        context.buffers = &db_->buffers();
        context.governor = &db_->governor();
        context.scheduler = &db_->scheduler();
        context.thread_limit = thread_override_;
        DataChunk chunk;
        chunk.Initialize(sub.types);
        int64_t inserted = 0;
        while (true) {
          Status s = sub.plan->GetChunk(&context, &chunk);
          if (!s.ok()) {
            Status f = FinishAutocommit(started, false);
            (void)f;
            return s;
          }
          if (chunk.size() == 0) break;
          Status s2 = table->Append(txn, chunk);
          if (!s2.ok()) {
            Status f = FinishAutocommit(started, false);
            (void)f;
            return s2;
          }
          txn->wal_records().push_back(
              wal_record::Append(create.name, chunk));
          inserted += chunk.size();
        }
        MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
        return SingleValueResult("count", Value::BigInt(inserted));
      }
      MALLARD_RETURN_NOT_OK(db_->catalog().CreateTable(
          create.name, create.columns, create.if_not_exists));
      bool started = false;
      MALLARD_ASSIGN_OR_RETURN(Transaction * txn,
                               ActiveTransaction(&started));
      txn->wal_records().push_back(
          wal_record::CreateTable(create.name, create.columns));
      MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
      return SingleValueResult("ok", Value::Boolean(true));
    }
    case StatementType::kCreateView: {
      auto& create = static_cast<CreateViewStatement&>(*stmt);
      MALLARD_RETURN_NOT_OK(db_->catalog().CreateView(
          create.name, create.select_sql, create.aliases,
          create.or_replace));
      bool started = false;
      MALLARD_ASSIGN_OR_RETURN(Transaction * txn,
                               ActiveTransaction(&started));
      txn->wal_records().push_back(wal_record::CreateView(
          create.name, create.select_sql, create.aliases));
      MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
      return SingleValueResult("ok", Value::Boolean(true));
    }
    case StatementType::kDrop: {
      auto& drop = static_cast<DropStatement&>(*stmt);
      if (drop.is_view) {
        MALLARD_RETURN_NOT_OK(
            db_->catalog().DropView(drop.name, drop.if_exists));
      } else {
        MALLARD_RETURN_NOT_OK(
            db_->catalog().DropTable(drop.name, drop.if_exists));
      }
      bool started = false;
      MALLARD_ASSIGN_OR_RETURN(Transaction * txn,
                               ActiveTransaction(&started));
      txn->wal_records().push_back(drop.is_view
                                       ? wal_record::DropView(drop.name)
                                       : wal_record::DropTable(drop.name));
      MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
      return SingleValueResult("ok", Value::Boolean(true));
    }
    case StatementType::kCopy: {
      auto& copy = static_cast<CopyStatement&>(*stmt);
      if (copy.is_from) {
        MALLARD_ASSIGN_OR_RETURN(auto plan, planner.PlanStatement(copy));
        return ExecutePlan(std::move(plan));
      }
      // COPY table TO 'path': run SELECT * and write CSV.
      MALLARD_ASSIGN_OR_RETURN(
          auto result, Query("SELECT * FROM " + copy.table));
      std::vector<DataChunk*> chunks;
      for (const auto& chunk : result->Chunks()) {
        chunks.push_back(chunk.get());
      }
      CsvOptions options;
      options.delimiter = copy.delimiter;
      options.header = copy.header;
      MALLARD_RETURN_NOT_OK(
          CsvWriter::Write(copy.path, result->names(), chunks, options));
      return SingleValueResult("count",
                               Value::BigInt(result->RowCount()));
    }
    case StatementType::kTransaction: {
      auto& txn_stmt = static_cast<TransactionStatement&>(*stmt);
      switch (txn_stmt.kind) {
        case TransactionStatement::Kind::kBegin:
          MALLARD_RETURN_NOT_OK(BeginTransaction());
          break;
        case TransactionStatement::Kind::kCommit:
          MALLARD_RETURN_NOT_OK(Commit());
          break;
        case TransactionStatement::Kind::kRollback:
          MALLARD_RETURN_NOT_OK(Rollback());
          break;
      }
      return SingleValueResult("ok", Value::Boolean(true));
    }
    case StatementType::kPragma: {
      return ExecutePragma(static_cast<const PragmaStatement&>(*stmt));
    }
    case StatementType::kExplain: {
      auto& explain = static_cast<ExplainStatement&>(*stmt);
      PreparedPlan plan;
      switch (explain.inner->type) {
        case StatementType::kSelect: {
          MALLARD_ASSIGN_OR_RETURN(
              plan, planner.PlanSelect(
                        static_cast<const SelectStatement&>(*explain.inner)));
          break;
        }
        case StatementType::kUpdate: {
          MALLARD_ASSIGN_OR_RETURN(
              plan, planner.PlanUpdate(
                        static_cast<const UpdateStatement&>(*explain.inner)));
          break;
        }
        case StatementType::kDelete: {
          MALLARD_ASSIGN_OR_RETURN(
              plan, planner.PlanDelete(
                        static_cast<const DeleteStatement&>(*explain.inner)));
          break;
        }
        default:
          return Status::NotImplemented("EXPLAIN for this statement type");
      }
      return SingleValueResult("plan",
                               Value::Varchar(plan.plan->ToString()));
    }
    case StatementType::kCheckpoint: {
      MALLARD_RETURN_NOT_OK(db_->Checkpoint());
      return SingleValueResult("ok", Value::Boolean(true));
    }
  }
  return Status::NotImplemented("statement type not supported");
}

Result<std::unique_ptr<MaterializedQueryResult>> Connection::ExecutePragma(
    const PragmaStatement& stmt) {
  auto ok_result = [] { return SingleValueResult("ok", Value::Boolean(true)); };
  std::string name = StringUtil::Lower(stmt.name);
  if (name == "memory_limit") {
    if (stmt.value.empty()) {
      // Readback: `PRAGMA memory_limit` (no value) reports the budget
      // the out-of-core operators spill against right now — the
      // governor's effective (possibly reactive) number, not just the
      // configured cap. Spill tests assert this to prove what budget
      // they actually ran under.
      return SingleValueResult(
          "memory_limit",
          Value::BigInt(static_cast<int64_t>(
              db_->governor().EffectiveMemoryBudget())));
    }
    uint64_t bytes = std::strtoull(stmt.value.c_str(), nullptr, 10);
    if (bytes == 0) {
      return Status::InvalidArgument("memory_limit must be bytes > 0");
    }
    db_->governor().SetMemoryLimit(bytes);
    return ok_result();
  }
  if (name == "buffer_stats") {
    // One row of BufferManager counters: how much is resident, how much
    // has ever spilled, and how much sits in the temp file right now.
    BufferManagerStats stats = db_->buffers().GetStats();
    auto chunk = std::make_unique<DataChunk>();
    std::vector<std::string> names = {
        "memory_used",    "memory_limit",      "peak_memory",
        "spill_count",    "spilled_bytes",     "unspill_count",
        "eviction_count", "spilled_bytes_now", "spill_compressed_count",
        "spill_saved_bytes"};
    std::vector<TypeId> types(names.size(), TypeId::kBigInt);
    chunk->Initialize(types);
    const uint64_t values[] = {
        stats.memory_used,    stats.memory_limit,
        stats.peak_memory,    stats.spill_count,
        stats.spilled_bytes,  stats.unspill_count,
        stats.eviction_count, stats.spilled_bytes_now,
        stats.spill_compressed_count, stats.spill_saved_bytes};
    for (idx_t c = 0; c < names.size(); c++) {
      chunk->SetValue(c, 0, Value::BigInt(static_cast<int64_t>(values[c])));
    }
    chunk->SetCardinality(1);
    std::vector<std::unique_ptr<DataChunk>> chunks;
    chunks.push_back(std::move(chunk));
    return std::make_unique<MaterializedQueryResult>(
        std::move(names), std::move(types), std::move(chunks));
  }
  if (name == "storage_stats") {
    // One row of compressed-storage counters across every table: how
    // many finalized segments landed on each encoding, the logical vs
    // encoded footprint, and the global encode/decode/filter-window
    // counters. The compression tests assert encoded_bytes <
    // logical_bytes on dictionary/FOR-friendly data.
    TableEncodingStats total;
    db_->catalog().ForEachTable([&total](DataTable* table) {
      TableEncodingStats s = table->EncodingStats();
      total.segments_total += s.segments_total;
      total.segments_plain += s.segments_plain;
      total.segments_dict += s.segments_dict;
      total.segments_for += s.segments_for;
      total.logical_bytes += s.logical_bytes;
      total.encoded_bytes += s.encoded_bytes;
      total.dict_entries += s.dict_entries;
      total.dict_rows += s.dict_rows;
    });
    auto chunk = std::make_unique<DataChunk>();
    std::vector<std::string> names = {
        "segments_total", "segments_plain", "segments_dict",
        "segments_for",   "logical_bytes",  "encoded_bytes",
        "dict_entries",   "dict_rows",      "encode_count",
        "decode_count",   "code_filter_windows"};
    std::vector<TypeId> types(names.size(), TypeId::kBigInt);
    chunk->Initialize(types);
    const uint64_t values[] = {
        total.segments_total,
        total.segments_plain,
        total.segments_dict,
        total.segments_for,
        total.logical_bytes,
        total.encoded_bytes,
        total.dict_entries,
        total.dict_rows,
        SegmentEncodingCounters::encodes.load(),
        SegmentEncodingCounters::decodes.load(),
        SegmentEncodingCounters::filter_windows.load()};
    for (idx_t c = 0; c < names.size(); c++) {
      chunk->SetValue(c, 0, Value::BigInt(static_cast<int64_t>(values[c])));
    }
    chunk->SetCardinality(1);
    std::vector<std::unique_ptr<DataChunk>> chunks;
    chunks.push_back(std::move(chunk));
    return std::make_unique<MaterializedQueryResult>(
        std::move(names), std::move(types), std::move(chunks));
  }
  if (name == "threads") {
    if (stmt.value.empty()) {
      // Readback: `PRAGMA threads` (no value) reports the number of
      // workers a parallel pipeline launched by *this connection* would
      // use right now — the pinned override if one is set, else the
      // governor's (possibly reactive) budget, clamped to the morsel
      // source's worker ceiling. Scaling tests assert this to prove
      // what they actually ran with.
      int effective =
          thread_override_ > 0
              ? thread_override_
              : std::min(db_->governor().EffectiveThreadBudget(),
                         TableMorselSource::kMaxWorkers);
      return SingleValueResult("threads", Value::BigInt(effective));
    }
    char* end = nullptr;
    errno = 0;
    long threads = std::strtol(stmt.value.c_str(), &end, 10);
    // Full-string parse, no overflow, bounded: anything beyond the
    // morsel source's worker ceiling is meaningless as a pin.
    if (end == stmt.value.c_str() || *end != '\0' || errno == ERANGE ||
        threads < 0 || threads > TableMorselSource::kMaxWorkers) {
      return Status::InvalidArgument(
          "threads must be 1.." +
          std::to_string(TableMorselSource::kMaxWorkers) +
          ", or 0 to follow the governor's budget");
    }
    // Per-connection override: this connection's parallel pipelines use
    // exactly `threads` workers; other connections keep following the
    // governor's (possibly reactive) budget. 0 clears the override.
    thread_override_ = static_cast<int>(threads);
    return ok_result();
  }
  if (name == "reactive") {
    db_->governor().SetReactive(StringUtil::CIEquals(stmt.value, "true") ||
                                stmt.value == "1");
    return ok_result();
  }
  if (name == "compression") {
    if (StringUtil::CIEquals(stmt.value, "none")) {
      db_->governor().SetCompressionLevel(CompressionLevel::kNone);
    } else if (StringUtil::CIEquals(stmt.value, "light")) {
      db_->governor().SetCompressionLevel(CompressionLevel::kLight);
    } else if (StringUtil::CIEquals(stmt.value, "heavy")) {
      db_->governor().SetCompressionLevel(CompressionLevel::kHeavy);
    } else {
      return Status::InvalidArgument(
          "compression must be none, light or heavy");
    }
    return ok_result();
  }
  if (name == "plan_cache") {
    bool enable = StringUtil::CIEquals(stmt.value, "true") ||
                  StringUtil::CIEquals(stmt.value, "on") ||
                  stmt.value == "1";
    plan_cache_enabled_ = enable;
    if (!enable) plan_cache_.clear();
    return ok_result();
  }
  if (name == "memtest_on_allocation") {
    db_->buffers().EnableAllocationTesting(
        StringUtil::CIEquals(stmt.value, "true") || stmt.value == "1");
    return ok_result();
  }
  if (name == "wal_commit_mode") {
    WriteAheadLog* wal = db_->wal();
    if (stmt.value.empty()) {
      // Readback: the durability contract commits on this database get
      // right now (in-memory databases have no WAL and report "none").
      const char* mode =
          wal == nullptr
              ? "none"
              : (wal->commit_mode() == WalCommitMode::kAsync ? "async"
                                                             : "sync");
      return SingleValueResult("wal_commit_mode", Value::Varchar(mode));
    }
    if (wal == nullptr) {
      return Status::InvalidArgument(
          "wal_commit_mode requires a persistent database");
    }
    if (StringUtil::CIEquals(stmt.value, "sync")) {
      // Switching to sync flushes everything already acknowledged, so
      // the stronger guarantee holds from this statement's return.
      MALLARD_RETURN_NOT_OK(wal->SetCommitMode(WalCommitMode::kSync));
    } else if (StringUtil::CIEquals(stmt.value, "async")) {
      MALLARD_RETURN_NOT_OK(wal->SetCommitMode(WalCommitMode::kAsync));
    } else {
      return Status::InvalidArgument("wal_commit_mode must be sync or async");
    }
    return ok_result();
  }
  if (name == "wal_stats") {
    // One row of WAL counters; the group-commit tests assert that
    // `fsyncs` stays well below `commits` under concurrent writers.
    if (db_->wal() == nullptr) {
      return Status::InvalidArgument(
          "wal_stats requires a persistent database");
    }
    WalStats stats = db_->wal()->GetStats();
    auto chunk = std::make_unique<DataChunk>();
    std::vector<std::string> names = {
        "commits",    "fsyncs",       "flushes",
        "group_commits", "max_group", "async_acks",
        "flush_errors",  "bytes_written", "pending_bytes"};
    std::vector<TypeId> types(names.size(), TypeId::kBigInt);
    chunk->Initialize(types);
    const uint64_t values[] = {
        stats.commits,    stats.fsyncs,       stats.flushes,
        stats.group_commits, stats.max_group, stats.async_acks,
        stats.flush_errors,  stats.bytes_written, stats.pending_bytes};
    for (idx_t c = 0; c < names.size(); c++) {
      chunk->SetValue(c, 0, Value::BigInt(static_cast<int64_t>(values[c])));
    }
    chunk->SetCardinality(1);
    std::vector<std::unique_ptr<DataChunk>> chunks;
    chunks.push_back(std::move(chunk));
    return std::make_unique<MaterializedQueryResult>(
        std::move(names), std::move(types), std::move(chunks));
  }
  return Status::InvalidArgument("unknown pragma '" + stmt.name + "'");
}

Result<std::unique_ptr<StreamingQueryResult>> Connection::SendQuery(
    const std::string& sql) {
  MALLARD_ASSIGN_OR_RETURN(auto statements, Parser::Parse(sql));
  if (statements.size() != 1 ||
      statements[0]->type != StatementType::kSelect) {
    return Status::InvalidArgument(
        "SendQuery supports exactly one SELECT statement");
  }
  Planner planner(&db_->catalog(), &db_->governor());
  MALLARD_ASSIGN_OR_RETURN(auto plan, planner.PlanStatement(*statements[0]));
  PhysicalOperator* raw = plan.plan.get();
  return StreamPlan(std::move(plan.plan), raw, std::move(plan.names),
                    std::move(plan.types));
}

Result<std::unique_ptr<StreamingQueryResult>> Connection::StreamPlan(
    std::unique_ptr<PhysicalOperator> owned_plan, PhysicalOperator* plan,
    std::vector<std::string> names, std::vector<TypeId> types,
    std::shared_ptr<void> lease) {
  bool owns = !transaction_;
  std::unique_ptr<Transaction> txn;
  if (owns) {
    txn = db_->transactions().Begin();
  }
  return std::make_unique<StreamingQueryResult>(
      this, std::move(owned_plan), plan, std::move(names), std::move(types),
      owns, std::move(txn), std::move(lease));
}

Result<std::unique_ptr<PreparedStatement>> Connection::Prepare(
    const std::string& sql) {
  MALLARD_ASSIGN_OR_RETURN(auto statements, Parser::Parse(sql));
  if (statements.size() != 1) {
    return Status::InvalidArgument(
        "Prepare expects exactly one statement, got " +
        std::to_string(statements.size()));
  }
  auto parameters = std::make_shared<BoundParameterData>();
  Planner planner(&db_->catalog(), &db_->governor());
  planner.SetParameterData(parameters);
  uint64_t catalog_version = db_->catalog().version();
  MALLARD_ASSIGN_OR_RETURN(auto plan, planner.PlanStatement(*statements[0]));
  // $N numbering must be gapless: a skipped slot would demand a binding
  // for a parameter that appears nowhere in the SQL.
  for (idx_t i = 0; i < parameters->Count(); i++) {
    if (!parameters->referenced[i]) {
      return Status::Binder(
          "parameter $" + std::to_string(i + 1) +
          " is never referenced; parameters must be numbered "
          "consecutively from $1");
    }
  }
  return std::unique_ptr<PreparedStatement>(new PreparedStatement(
      this, std::move(statements[0]), std::move(parameters), std::move(plan),
      catalog_version));
}

StreamingQueryResult::StreamingQueryResult(
    Connection* connection, std::unique_ptr<PhysicalOperator> owned_plan,
    PhysicalOperator* plan, std::vector<std::string> names,
    std::vector<TypeId> types, bool owns_transaction,
    std::unique_ptr<Transaction> txn, std::shared_ptr<void> lease)
    : QueryResult(std::move(names), std::move(types)),
      connection_(connection),
      owned_plan_(std::move(owned_plan)),
      plan_(plan),
      owns_transaction_(owns_transaction),
      txn_(std::move(txn)),
      lease_(std::move(lease)) {}

StreamingQueryResult::~StreamingQueryResult() {
  Status status = Close();
  (void)status;
}

Result<std::unique_ptr<DataChunk>> StreamingQueryResult::Fetch() {
  if (done_) return std::unique_ptr<DataChunk>();
  ExecutionContext context;
  context.txn = owns_transaction_ ? txn_.get()
                                  : connection_->transaction_.get();
  context.buffers = &connection_->db_->buffers();
  context.governor = &connection_->db_->governor();
  context.scheduler = &connection_->db_->scheduler();
  context.thread_limit = connection_->thread_override_;
  auto chunk = std::make_unique<DataChunk>();
  chunk->Initialize(types_);
  MALLARD_RETURN_NOT_OK(plan_->GetChunk(&context, chunk.get()));
  if (chunk->size() == 0) {
    MALLARD_RETURN_NOT_OK(Close());
    return std::unique_ptr<DataChunk>();
  }
  return chunk;
}

Status StreamingQueryResult::Close() {
  if (done_) return Status::OK();
  done_ = true;
  lease_.reset();  // the borrowed plan may be rewound/re-planned again
  if (owns_transaction_ && txn_) {
    Status status =
        connection_->db_->transactions().Commit(txn_.get());
    txn_.reset();
    return status;
  }
  return Status::OK();
}

}  // namespace mallard
