#include "mallard/main/connection.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>

#include "mallard/common/string_util.h"
#include "mallard/etl/csv.h"
#include "mallard/main/prepared_statement.h"
#include "mallard/parallel/morsel.h"
#include "mallard/parser/parser.h"
#include "mallard/planner/planner.h"
#include "mallard/resilience/retry_policy.h"
#include "mallard/resilience/scrubber.h"
#include "mallard/storage/table/column_segment.h"

namespace mallard {

Connection::Connection(Database* db)
    : db_(db), session_id_(db->NextSessionId()) {}

Connection::~Connection() {
  if (transaction_) {
    db_->transactions().Rollback(transaction_.get());
  }
}

Status Connection::BeginTransaction() {
  if (transaction_) {
    return Status::TransactionContext("transaction already active");
  }
  transaction_ = db_->transactions().Begin();
  return Status::OK();
}

Status Connection::Commit() {
  if (!transaction_) {
    return Status::TransactionContext("no transaction active");
  }
  Status status = db_->transactions().Commit(transaction_.get());
  transaction_.reset();
  return status;
}

Status Connection::Rollback() {
  if (!transaction_) {
    return Status::TransactionContext("no transaction active");
  }
  db_->transactions().Rollback(transaction_.get());
  transaction_.reset();
  return Status::OK();
}

Result<Transaction*> Connection::ActiveTransaction(bool* started) {
  if (transaction_) {
    *started = false;
    return transaction_.get();
  }
  transaction_ = db_->transactions().Begin();
  *started = true;
  return transaction_.get();
}

Status Connection::FinishAutocommit(bool started, bool success) {
  if (!started) return Status::OK();
  Status status = Status::OK();
  if (success) {
    status = db_->transactions().Commit(transaction_.get());
  } else {
    db_->transactions().Rollback(transaction_.get());
  }
  transaction_.reset();
  return status;
}

void Connection::SetupContext(ExecutionContext* context, Transaction* txn,
                              const QueryTicket* ticket) {
  context->txn = txn;
  context->buffers = &db_->buffers();
  context->governor = &db_->governor();
  context->scheduler = &db_->scheduler();
  context->thread_limit = thread_override_;
  context->ticket = ticket;
  context->interrupt = &interrupt_;
  context->salvage_mode = db_->config().salvage_mode;
  if (statement_timeout_ms_ > 0) {
    context->has_deadline = true;
    context->deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(statement_timeout_ms_);
  }
}

Result<std::shared_ptr<void>> Connection::AdmitSlot() {
  if (admission_depth_ > 0) return std::shared_ptr<void>();
  MALLARD_RETURN_NOT_OK(db_->admission().Admit(priority_class_));
  admission_depth_++;
  return std::shared_ptr<void>(static_cast<void*>(this), [this](void*) {
    admission_depth_--;
    db_->admission().Release();
  });
}

namespace {
bool IsPlanCacheable(StatementType type) {
  switch (type) {
    case StatementType::kSelect:
    case StatementType::kInsert:
    case StatementType::kUpdate:
    case StatementType::kDelete:
      return true;
    default:
      return false;
  }
}
}  // namespace

Result<std::unique_ptr<MaterializedQueryResult>> Connection::Query(
    const std::string& sql) {
  if (plan_cache_enabled_) {
    NormalizedQuery normalized = NormalizeQueryText(sql);
    if (normalized.cacheable) {
      SharedPlanCache& cache = db_->plan_cache();
      bool busy = false;
      SharedPlanCache::Entry* entry = cache.Acquire(normalized.key, &busy);
      if (entry) {
        return ExecuteCachedEntry(entry, normalized.literals);
      }
      if (!busy) {
        auto planned = PlanNormalized(normalized);
        if (planned.ok()) {
          entry = cache.Insert(std::move(*planned));
          return ExecuteCachedEntry(entry, normalized.literals);
        }
        // Planning the normalized text failed — either the error is
        // real (missing table: the uncached path below reproduces it
        // with the original text) or the normalizer misjudged a literal
        // position; both execute uncached.
      }
      // A busy entry means another connection is executing this exact
      // plan right now: plan fresh, uncached, instead of waiting.
    } else {
      db_->plan_cache().RecordUncacheable();
    }
  }
  MALLARD_ASSIGN_OR_RETURN(auto statements, Parser::Parse(sql));
  if (statements.empty()) {
    return Status::InvalidArgument("no statements to execute");
  }
  std::unique_ptr<MaterializedQueryResult> result;
  for (auto& stmt : statements) {
    MALLARD_ASSIGN_OR_RETURN(result, ExecuteStatement(stmt.get()));
  }
  return result;
}

Result<std::unique_ptr<SharedPlanCache::Entry>> Connection::PlanNormalized(
    const NormalizedQuery& normalized) {
  MALLARD_ASSIGN_OR_RETURN(auto statements,
                           Parser::Parse(normalized.normalized_sql));
  if (statements.size() != 1 || !IsPlanCacheable(statements[0]->type)) {
    return Status::InvalidArgument("normalized statement is not cacheable");
  }
  auto entry = std::make_unique<SharedPlanCache::Entry>();
  entry->key = normalized.key;
  entry->parameters = std::make_shared<BoundParameterData>();
  entry->parameters->EnsureSize(normalized.literals.size());
  // Pre-typing each slot with its literal's parsed type makes the
  // binder coerce exactly as it would have with the literal in place —
  // `id = 7` and `id = 7.5` already landed on different cache keys.
  for (idx_t i = 0; i < normalized.literals.size(); i++) {
    entry->parameters->types[i] = normalized.literals[i].type();
  }
  Planner planner(&db_->catalog(), &db_->governor());
  planner.SetParameterData(entry->parameters);
  entry->catalog_version = db_->catalog().version();
  MALLARD_ASSIGN_OR_RETURN(entry->plan,
                           planner.PlanStatement(*statements[0]));
  entry->statement = std::move(statements[0]);
  return entry;
}

Result<std::unique_ptr<MaterializedQueryResult>>
Connection::ExecuteCachedEntry(SharedPlanCache::Entry* entry,
                               const std::vector<Value>& literals) {
  SharedPlanCache& cache = db_->plan_cache();
  uint64_t current_version = db_->catalog().version();
  if (entry->catalog_version != current_version) {
    // DDL since planning: re-plan in place from the stored AST, like
    // PreparedStatement::EnsureCurrentPlan. A dropped table surfaces
    // here as a binder error and the entry dies.
    cache.RecordInvalidation();
    Planner planner(&db_->catalog(), &db_->governor());
    planner.SetParameterData(entry->parameters);
    auto plan = planner.PlanStatement(*entry->statement);
    if (!plan.ok()) {
      cache.Release(entry, /*keep=*/false);
      return plan.status();
    }
    entry->plan = std::move(*plan);
    entry->catalog_version = current_version;
  }
  for (idx_t i = 0; i < literals.size(); i++) {
    entry->parameters->values[i] = literals[i];
    entry->parameters->is_set[i] = true;
  }
  Status rewind = entry->plan.plan->Reset();
  if (!rewind.ok()) {
    cache.Release(entry, /*keep=*/false);
    return rewind;
  }
  auto result = ExecutePhysicalPlan(entry->plan.plan.get(), entry->plan.names,
                                    entry->plan.types);
  // Idle cached plans must not pin their last execution's operator
  // state (join build tables live in non-spillable buffer segments).
  Status clear = entry->plan.plan->Reset();
  cache.Release(entry, result.ok() && clear.ok());
  return result;
}

Result<std::unique_ptr<MaterializedQueryResult>>
Connection::ExecutePhysicalPlan(PhysicalOperator* plan,
                                const std::vector<std::string>& names,
                                const std::vector<TypeId>& types) {
  MALLARD_ASSIGN_OR_RETURN(auto slot, AdmitSlot());
  auto ticket = db_->scheduler().RegisterQuery(session_id_, priority_weight_);
  bool started = false;
  MALLARD_ASSIGN_OR_RETURN(Transaction * txn, ActiveTransaction(&started));
  ExecutionContext context;
  SetupContext(&context, txn, ticket.get());
  std::vector<std::unique_ptr<DataChunk>> chunks;
  Status status = Status::OK();
  while (true) {
    // Chunk-boundary interrupt check: even a plan whose operators never
    // look at the flag (VALUES, tiny scans) cancels between chunks.
    status = context.CheckInterrupt();
    if (!status.ok()) break;
    auto chunk = std::make_unique<DataChunk>();
    chunk->Initialize(types);
    status = plan->GetChunk(&context, chunk.get());
    if (!status.ok()) break;
    if (chunk->size() == 0) break;
    chunks.push_back(std::move(chunk));
  }
  // One Interrupt() cancels at most one statement: the flag is consumed
  // when the statement it hit (or outlived) completes.
  interrupt_.store(false, std::memory_order_relaxed);
  if (!status.ok()) {
    if (status.IsTransactionConflict()) db_->transactions().CountConflict();
    Status finish = FinishAutocommit(started, false);
    (void)finish;
    // A failed statement inside an explicit transaction poisons it.
    if (!started && transaction_) {
      db_->transactions().Rollback(transaction_.get());
      transaction_.reset();
    }
    return status;
  }
  MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
  return std::make_unique<MaterializedQueryResult>(names, types,
                                                   std::move(chunks));
}

Result<std::unique_ptr<MaterializedQueryResult>> Connection::ExecutePlan(
    PreparedPlan prepared) {
  return ExecutePhysicalPlan(prepared.plan.get(), prepared.names,
                             prepared.types);
}

namespace {
std::unique_ptr<MaterializedQueryResult> SingleValueResult(
    const std::string& name, Value value) {
  auto chunk = std::make_unique<DataChunk>();
  chunk->Initialize({value.type()});
  chunk->SetValue(0, 0, value);
  chunk->SetCardinality(1);
  std::vector<std::unique_ptr<DataChunk>> chunks;
  chunks.push_back(std::move(chunk));
  return std::make_unique<MaterializedQueryResult>(
      std::vector<std::string>{name}, std::vector<TypeId>{value.type()},
      std::move(chunks));
}
}  // namespace

Result<std::unique_ptr<MaterializedQueryResult>> Connection::ExecuteStatement(
    SQLStatement* stmt) {
  Planner planner(&db_->catalog(), &db_->governor());
  switch (stmt->type) {
    // Plannable statements share one prepare-then-execute pipeline with
    // SendQuery and Connection::Prepare.
    case StatementType::kSelect:
    case StatementType::kInsert:
    case StatementType::kUpdate:
    case StatementType::kDelete: {
      MALLARD_ASSIGN_OR_RETURN(auto plan, planner.PlanStatement(*stmt));
      return ExecutePlan(std::move(plan));
    }
    case StatementType::kCreateTable: {
      auto& create = static_cast<CreateTableStatement&>(*stmt);
      if (create.as_select) {
        // CTAS: plan the select, create the table, insert.
        MALLARD_ASSIGN_OR_RETURN(auto sub,
                                 planner.PlanSelect(*create.as_select));
        MALLARD_ASSIGN_OR_RETURN(auto slot, AdmitSlot());
        auto ticket =
            db_->scheduler().RegisterQuery(session_id_, priority_weight_);
        std::vector<ColumnDefinition> columns;
        for (idx_t i = 0; i < sub.names.size(); i++) {
          columns.emplace_back(sub.names[i], sub.types[i]);
        }
        MALLARD_RETURN_NOT_OK(db_->catalog().CreateTable(
            create.name, columns, create.if_not_exists));
        bool started = false;
        MALLARD_ASSIGN_OR_RETURN(Transaction * txn,
                                 ActiveTransaction(&started));
        txn->wal_records().push_back(
            wal_record::CreateTable(create.name, columns));
        MALLARD_ASSIGN_OR_RETURN(DataTable * table,
                                 db_->catalog().GetTable(create.name));
        ExecutionContext context;
        SetupContext(&context, txn, ticket.get());
        DataChunk chunk;
        chunk.Initialize(sub.types);
        int64_t inserted = 0;
        Status status = Status::OK();
        while (true) {
          status = context.CheckInterrupt();
          if (!status.ok()) break;
          status = sub.plan->GetChunk(&context, &chunk);
          if (!status.ok()) break;
          if (chunk.size() == 0) break;
          status = table->Append(txn, chunk);
          if (!status.ok()) break;
          txn->wal_records().push_back(
              wal_record::Append(create.name, chunk));
          inserted += chunk.size();
        }
        interrupt_.store(false, std::memory_order_relaxed);
        if (!status.ok()) {
          Status finish = FinishAutocommit(started, false);
          (void)finish;
          return status;
        }
        MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
        return SingleValueResult("count", Value::BigInt(inserted));
      }
      MALLARD_RETURN_NOT_OK(db_->catalog().CreateTable(
          create.name, create.columns, create.if_not_exists));
      bool started = false;
      MALLARD_ASSIGN_OR_RETURN(Transaction * txn,
                               ActiveTransaction(&started));
      txn->wal_records().push_back(
          wal_record::CreateTable(create.name, create.columns));
      MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
      return SingleValueResult("ok", Value::Boolean(true));
    }
    case StatementType::kCreateView: {
      auto& create = static_cast<CreateViewStatement&>(*stmt);
      MALLARD_RETURN_NOT_OK(db_->catalog().CreateView(
          create.name, create.select_sql, create.aliases,
          create.or_replace));
      bool started = false;
      MALLARD_ASSIGN_OR_RETURN(Transaction * txn,
                               ActiveTransaction(&started));
      txn->wal_records().push_back(wal_record::CreateView(
          create.name, create.select_sql, create.aliases));
      MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
      return SingleValueResult("ok", Value::Boolean(true));
    }
    case StatementType::kDrop: {
      auto& drop = static_cast<DropStatement&>(*stmt);
      if (drop.is_view) {
        MALLARD_RETURN_NOT_OK(
            db_->catalog().DropView(drop.name, drop.if_exists));
      } else {
        MALLARD_RETURN_NOT_OK(
            db_->catalog().DropTable(drop.name, drop.if_exists));
      }
      bool started = false;
      MALLARD_ASSIGN_OR_RETURN(Transaction * txn,
                               ActiveTransaction(&started));
      txn->wal_records().push_back(drop.is_view
                                       ? wal_record::DropView(drop.name)
                                       : wal_record::DropTable(drop.name));
      MALLARD_RETURN_NOT_OK(FinishAutocommit(started, true));
      return SingleValueResult("ok", Value::Boolean(true));
    }
    case StatementType::kCopy: {
      auto& copy = static_cast<CopyStatement&>(*stmt);
      if (copy.is_from) {
        MALLARD_ASSIGN_OR_RETURN(auto plan, planner.PlanStatement(copy));
        return ExecutePlan(std::move(plan));
      }
      // COPY table TO 'path': run SELECT * and write CSV.
      MALLARD_ASSIGN_OR_RETURN(
          auto result, Query("SELECT * FROM " + copy.table));
      std::vector<DataChunk*> chunks;
      for (const auto& chunk : result->Chunks()) {
        chunks.push_back(chunk.get());
      }
      CsvOptions options;
      options.delimiter = copy.delimiter;
      options.header = copy.header;
      MALLARD_RETURN_NOT_OK(
          CsvWriter::Write(copy.path, result->names(), chunks, options));
      return SingleValueResult("count",
                               Value::BigInt(result->RowCount()));
    }
    case StatementType::kTransaction: {
      auto& txn_stmt = static_cast<TransactionStatement&>(*stmt);
      switch (txn_stmt.kind) {
        case TransactionStatement::Kind::kBegin:
          MALLARD_RETURN_NOT_OK(BeginTransaction());
          break;
        case TransactionStatement::Kind::kCommit:
          MALLARD_RETURN_NOT_OK(Commit());
          break;
        case TransactionStatement::Kind::kRollback:
          MALLARD_RETURN_NOT_OK(Rollback());
          break;
      }
      return SingleValueResult("ok", Value::Boolean(true));
    }
    case StatementType::kPragma: {
      return ExecutePragma(static_cast<const PragmaStatement&>(*stmt));
    }
    case StatementType::kExplain: {
      auto& explain = static_cast<ExplainStatement&>(*stmt);
      PreparedPlan plan;
      switch (explain.inner->type) {
        case StatementType::kSelect: {
          MALLARD_ASSIGN_OR_RETURN(
              plan, planner.PlanSelect(
                        static_cast<const SelectStatement&>(*explain.inner)));
          break;
        }
        case StatementType::kUpdate: {
          MALLARD_ASSIGN_OR_RETURN(
              plan, planner.PlanUpdate(
                        static_cast<const UpdateStatement&>(*explain.inner)));
          break;
        }
        case StatementType::kDelete: {
          MALLARD_ASSIGN_OR_RETURN(
              plan, planner.PlanDelete(
                        static_cast<const DeleteStatement&>(*explain.inner)));
          break;
        }
        default:
          return Status::NotImplemented("EXPLAIN for this statement type");
      }
      return SingleValueResult("plan",
                               Value::Varchar(plan.plan->ToString()));
    }
    case StatementType::kCheckpoint: {
      MALLARD_RETURN_NOT_OK(db_->Checkpoint());
      return SingleValueResult("ok", Value::Boolean(true));
    }
  }
  return Status::NotImplemented("statement type not supported");
}

namespace {
/// Builds a one-row result from parallel name/value arrays (the shape
/// every *_stats PRAGMA returns).
std::unique_ptr<MaterializedQueryResult> CountersResult(
    std::vector<std::string> names, const std::vector<uint64_t>& values) {
  auto chunk = std::make_unique<DataChunk>();
  std::vector<TypeId> types(names.size(), TypeId::kBigInt);
  chunk->Initialize(types);
  for (idx_t c = 0; c < names.size(); c++) {
    chunk->SetValue(c, 0, Value::BigInt(static_cast<int64_t>(values[c])));
  }
  chunk->SetCardinality(1);
  std::vector<std::unique_ptr<DataChunk>> chunks;
  chunks.push_back(std::move(chunk));
  return std::make_unique<MaterializedQueryResult>(
      std::move(names), std::move(types), std::move(chunks));
}
}  // namespace

Result<std::unique_ptr<MaterializedQueryResult>> Connection::ExecutePragma(
    const PragmaStatement& stmt) {
  auto ok_result = [] { return SingleValueResult("ok", Value::Boolean(true)); };
  auto parse_int = [](const std::string& text, long min_value,
                      long max_value, long* out) -> bool {
    char* end = nullptr;
    errno = 0;
    long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        v < min_value || v > max_value) {
      return false;
    }
    *out = v;
    return true;
  };
  std::string name = StringUtil::Lower(stmt.name);
  if (name == "memory_limit") {
    if (stmt.value.empty()) {
      // Readback: `PRAGMA memory_limit` (no value) reports the budget
      // the out-of-core operators spill against right now — the
      // governor's effective (possibly reactive) number, not just the
      // configured cap. Spill tests assert this to prove what budget
      // they actually ran under.
      return SingleValueResult(
          "memory_limit",
          Value::BigInt(static_cast<int64_t>(
              db_->governor().EffectiveMemoryBudget())));
    }
    uint64_t bytes = std::strtoull(stmt.value.c_str(), nullptr, 10);
    if (bytes == 0) {
      return Status::InvalidArgument("memory_limit must be bytes > 0");
    }
    db_->governor().SetMemoryLimit(bytes);
    return ok_result();
  }
  if (name == "buffer_stats") {
    // One row of BufferManager counters: how much is resident, how much
    // has ever spilled, and how much sits in the temp file right now.
    BufferManagerStats stats = db_->buffers().GetStats();
    return CountersResult(
        {"memory_used", "memory_limit", "peak_memory", "spill_count",
         "spilled_bytes", "unspill_count", "eviction_count",
         "spilled_bytes_now", "spill_compressed_count", "spill_saved_bytes"},
        {stats.memory_used, stats.memory_limit, stats.peak_memory,
         stats.spill_count, stats.spilled_bytes, stats.unspill_count,
         stats.eviction_count, stats.spilled_bytes_now,
         stats.spill_compressed_count, stats.spill_saved_bytes});
  }
  if (name == "storage_stats") {
    // One row of compressed-storage counters across every table: how
    // many finalized segments landed on each encoding, the logical vs
    // encoded footprint, and the global encode/decode/filter-window
    // counters. The compression tests assert encoded_bytes <
    // logical_bytes on dictionary/FOR-friendly data.
    TableEncodingStats total;
    db_->catalog().ForEachTable([&total](DataTable* table) {
      TableEncodingStats s = table->EncodingStats();
      total.segments_total += s.segments_total;
      total.segments_plain += s.segments_plain;
      total.segments_dict += s.segments_dict;
      total.segments_for += s.segments_for;
      total.logical_bytes += s.logical_bytes;
      total.encoded_bytes += s.encoded_bytes;
      total.dict_entries += s.dict_entries;
      total.dict_rows += s.dict_rows;
    });
    return CountersResult(
        {"segments_total", "segments_plain", "segments_dict", "segments_for",
         "logical_bytes", "encoded_bytes", "dict_entries", "dict_rows",
         "encode_count", "decode_count", "code_filter_windows"},
        {total.segments_total, total.segments_plain, total.segments_dict,
         total.segments_for, total.logical_bytes, total.encoded_bytes,
         total.dict_entries, total.dict_rows,
         SegmentEncodingCounters::encodes.load(),
         SegmentEncodingCounters::decodes.load(),
         SegmentEncodingCounters::filter_windows.load()});
  }
  if (name == "threads") {
    if (stmt.value.empty()) {
      // Readback: `PRAGMA threads` (no value) reports the number of
      // workers a parallel pipeline launched by *this connection* would
      // use right now — the pinned override if one is set, else the
      // governor's (possibly reactive) budget, clamped to the morsel
      // source's worker ceiling. Scaling tests assert this to prove
      // what they actually ran with.
      int effective =
          thread_override_ > 0
              ? thread_override_
              : std::min(db_->governor().EffectiveThreadBudget(),
                         TableMorselSource::kMaxWorkers);
      return SingleValueResult("threads", Value::BigInt(effective));
    }
    long threads = 0;
    // Full-string parse, no overflow, bounded: anything beyond the
    // morsel source's worker ceiling is meaningless as a pin.
    if (!parse_int(stmt.value, 0, TableMorselSource::kMaxWorkers, &threads)) {
      return Status::InvalidArgument(
          "threads must be 1.." +
          std::to_string(TableMorselSource::kMaxWorkers) +
          ", or 0 to follow the governor's budget");
    }
    // Per-connection override: this connection's parallel pipelines use
    // exactly `threads` workers; other connections keep following the
    // governor's (possibly reactive) budget. 0 clears the override.
    thread_override_ = static_cast<int>(threads);
    return ok_result();
  }
  if (name == "priority") {
    if (stmt.value.empty()) {
      // Readback: this connection's fair-share class.
      const char* level = priority_class_ == 0
                              ? "low"
                              : (priority_class_ == 2 ? "high" : "normal");
      return SingleValueResult("priority", Value::Varchar(level));
    }
    // Weight divides the scheduler's thread budget across concurrent
    // queries; class orders the admission queue. Takes effect on this
    // connection's next statement.
    if (StringUtil::CIEquals(stmt.value, "low")) {
      priority_weight_ = 1;
      priority_class_ = 0;
    } else if (StringUtil::CIEquals(stmt.value, "normal")) {
      priority_weight_ = 2;
      priority_class_ = 1;
    } else if (StringUtil::CIEquals(stmt.value, "high")) {
      priority_weight_ = 4;
      priority_class_ = 2;
    } else {
      return Status::InvalidArgument(
          "priority must be low, normal or high");
    }
    return ok_result();
  }
  if (name == "admission_limit") {
    if (stmt.value.empty()) {
      // Readback: concurrent statements admitted right now before new
      // arrivals queue (0 = auto: 4x the governor's thread cap).
      return SingleValueResult(
          "admission_limit",
          Value::BigInt(db_->admission().max_active()));
    }
    long limit = 0;
    if (!parse_int(stmt.value, 0, 1 << 20, &limit)) {
      return Status::InvalidArgument(
          "admission_limit must be >= 1, or 0 for auto (4x thread cap)");
    }
    db_->admission().SetMaxActive(static_cast<int>(limit));
    return ok_result();
  }
  if (name == "admission_queue_depth") {
    if (stmt.value.empty()) {
      return SingleValueResult(
          "admission_queue_depth",
          Value::BigInt(db_->admission().queue_depth()));
    }
    long depth = 0;
    if (!parse_int(stmt.value, 0, 1 << 20, &depth)) {
      return Status::InvalidArgument(
          "admission_queue_depth must be >= 0 (0 sheds instead of queueing)");
    }
    db_->admission().SetQueueDepth(static_cast<int>(depth));
    return ok_result();
  }
  if (name == "admission_timeout_ms") {
    if (stmt.value.empty()) {
      return SingleValueResult(
          "admission_timeout_ms",
          Value::BigInt(static_cast<int64_t>(db_->admission().timeout_ms())));
    }
    long timeout = 0;
    if (!parse_int(stmt.value, 1, 1L << 40, &timeout)) {
      return Status::InvalidArgument("admission_timeout_ms must be >= 1");
    }
    db_->admission().SetTimeoutMs(static_cast<uint64_t>(timeout));
    return ok_result();
  }
  if (name == "scheduler_stats") {
    // One row of shared-pool counters; the fairness tests use
    // tasks_executed as a progress proxy and active_queries to observe
    // concurrent registration.
    SchedulerStats stats = db_->scheduler().GetStats();
    return CountersResult(
        {"tasks_executed", "runs", "active_queries", "pool_size"},
        {stats.tasks_executed, stats.runs,
         static_cast<uint64_t>(stats.active_queries),
         static_cast<uint64_t>(stats.pool_size)});
  }
  if (name == "admission_stats") {
    AdmissionStats stats = db_->admission().GetStats();
    return CountersResult(
        {"admitted", "queued", "shed", "timeouts", "active", "waiting"},
        {stats.admitted, stats.queued, stats.shed, stats.timeouts,
         static_cast<uint64_t>(stats.active),
         static_cast<uint64_t>(stats.waiting)});
  }
  if (name == "plan_cache_stats") {
    PlanCacheStats stats = db_->plan_cache().GetStats();
    return CountersResult(
        {"hits", "misses", "evictions", "invalidations", "busy_skips",
         "uncacheable", "entries"},
        {stats.hits, stats.misses, stats.evictions, stats.invalidations,
         stats.busy_skips, stats.uncacheable, stats.entries});
  }
  if (name == "reactive") {
    db_->governor().SetReactive(StringUtil::CIEquals(stmt.value, "true") ||
                                stmt.value == "1");
    return ok_result();
  }
  if (name == "compression") {
    if (StringUtil::CIEquals(stmt.value, "none")) {
      db_->governor().SetCompressionLevel(CompressionLevel::kNone);
    } else if (StringUtil::CIEquals(stmt.value, "light")) {
      db_->governor().SetCompressionLevel(CompressionLevel::kLight);
    } else if (StringUtil::CIEquals(stmt.value, "heavy")) {
      db_->governor().SetCompressionLevel(CompressionLevel::kHeavy);
    } else {
      return Status::InvalidArgument(
          "compression must be none, light or heavy");
    }
    return ok_result();
  }
  if (name == "plan_cache") {
    bool enable = StringUtil::CIEquals(stmt.value, "true") ||
                  StringUtil::CIEquals(stmt.value, "on") ||
                  stmt.value == "1";
    plan_cache_enabled_ = enable;
    // Turning the cache off drops the shared cache's plans too — the
    // PRAGMA's contract is "stop holding plans", not just "stop using
    // them on this connection".
    if (!enable) db_->plan_cache().Clear();
    return ok_result();
  }
  if (name == "memtest_on_allocation") {
    db_->buffers().EnableAllocationTesting(
        StringUtil::CIEquals(stmt.value, "true") || stmt.value == "1");
    return ok_result();
  }
  if (name == "wal_commit_mode") {
    WriteAheadLog* wal = db_->wal();
    if (stmt.value.empty()) {
      // Readback: the durability contract commits on this database get
      // right now (in-memory databases have no WAL and report "none").
      const char* mode =
          wal == nullptr
              ? "none"
              : (wal->commit_mode() == WalCommitMode::kAsync ? "async"
                                                             : "sync");
      return SingleValueResult("wal_commit_mode", Value::Varchar(mode));
    }
    if (wal == nullptr) {
      return Status::InvalidArgument(
          "wal_commit_mode requires a persistent database");
    }
    if (StringUtil::CIEquals(stmt.value, "sync")) {
      // Switching to sync flushes everything already acknowledged, so
      // the stronger guarantee holds from this statement's return.
      MALLARD_RETURN_NOT_OK(wal->SetCommitMode(WalCommitMode::kSync));
    } else if (StringUtil::CIEquals(stmt.value, "async")) {
      MALLARD_RETURN_NOT_OK(wal->SetCommitMode(WalCommitMode::kAsync));
    } else {
      return Status::InvalidArgument("wal_commit_mode must be sync or async");
    }
    return ok_result();
  }
  if (name == "wal_stats") {
    // One row of WAL counters; the group-commit tests assert that
    // `fsyncs` stays well below `commits` under concurrent writers.
    if (db_->wal() == nullptr) {
      return Status::InvalidArgument(
          "wal_stats requires a persistent database");
    }
    WalStats stats = db_->wal()->GetStats();
    return CountersResult(
        {"commits", "fsyncs", "flushes", "group_commits", "max_group",
         "async_acks", "flush_errors", "bytes_written", "pending_bytes",
         "torn_tail_recoveries"},
        {stats.commits, stats.fsyncs, stats.flushes, stats.group_commits,
         stats.max_group, stats.async_acks, stats.flush_errors,
         stats.bytes_written, stats.pending_bytes,
         stats.torn_tail_recoveries});
  }
  if (name == "statement_timeout_ms") {
    if (stmt.value.empty()) {
      // Readback: this connection's per-statement wall-clock budget.
      return SingleValueResult(
          "statement_timeout_ms",
          Value::BigInt(static_cast<int64_t>(statement_timeout_ms_)));
    }
    long ms = 0;
    if (!parse_int(stmt.value, 0, 1L << 40, &ms)) {
      return Status::InvalidArgument(
          "statement_timeout_ms must be >= 0 (0 disables the timeout)");
    }
    statement_timeout_ms_ = static_cast<uint64_t>(ms);
    return ok_result();
  }
  if (name == "salvage_mode") {
    if (stmt.value.empty()) {
      return SingleValueResult("salvage_mode",
                               Value::Boolean(db_->config().salvage_mode));
    }
    bool on;
    if (StringUtil::CIEquals(stmt.value, "on") ||
        StringUtil::CIEquals(stmt.value, "true") || stmt.value == "1") {
      on = true;
    } else if (StringUtil::CIEquals(stmt.value, "off") ||
               StringUtil::CIEquals(stmt.value, "false") ||
               stmt.value == "0") {
      on = false;
    } else {
      return Status::InvalidArgument("salvage_mode must be on or off");
    }
    db_->config().salvage_mode = on;
    return ok_result();
  }
  if (name == "resilience_stats") {
    // One row of corruption/retry counters, process-wide: what the I/O
    // retry layer absorbed, what the checksums caught, what salvage mode
    // skipped, and what the scrubber has verified.
    ResilienceStats& s = GlobalResilienceStats();
    return CountersResult(
        {"io_attempts", "io_retries", "retry_successes", "retry_exhausted",
         "backoff_waits", "backoff_micros", "block_checksum_failures",
         "spill_checksum_failures", "quarantined_row_groups",
         "salvage_skipped_groups", "salvage_skipped_rows", "scrub_runs",
         "scrub_objects", "scrub_failures"},
        {s.io_attempts.load(), s.io_retries.load(), s.retry_successes.load(),
         s.retry_exhausted.load(), s.backoff_waits.load(),
         s.backoff_micros.load(), s.block_checksum_failures.load(),
         s.spill_checksum_failures.load(), s.quarantined_row_groups.load(),
         s.salvage_skipped_groups.load(), s.salvage_skipped_rows.load(),
         s.scrub_runs.load(), s.scrub_objects.load(),
         s.scrub_failures.load()});
  }
  if (name == "integrity_check") {
    // Online scrub: every live block, the WAL, every table row group.
    // Result set: one row per damaged object plus a summary row per
    // category, so a clean database reads as a handful of "ok" rows and
    // a damaged one names exactly what to restore or salvage.
    IntegrityScrubber scrubber(db_->blocks(), db_->wal(), &db_->catalog(),
                               &db_->governor());
    ScrubReport report = scrubber.Run();
    std::vector<std::string> names = {"object", "status", "detail"};
    std::vector<TypeId> types(3, TypeId::kVarchar);
    std::vector<std::unique_ptr<DataChunk>> chunks;
    idx_t emitted = 0;
    while (emitted < report.findings.size()) {
      idx_t n = std::min<idx_t>(kVectorSize, report.findings.size() - emitted);
      auto chunk = std::make_unique<DataChunk>();
      chunk->Initialize(types);
      for (idx_t i = 0; i < n; i++) {
        const ScrubFinding& f = report.findings[emitted + i];
        chunk->SetValue(0, i, Value::Varchar(f.object));
        chunk->SetValue(1, i, Value::Varchar(f.ok ? "ok" : "corrupt"));
        chunk->SetValue(2, i, Value::Varchar(f.detail));
      }
      chunk->SetCardinality(n);
      chunks.push_back(std::move(chunk));
      emitted += n;
    }
    return std::make_unique<MaterializedQueryResult>(
        std::move(names), std::move(types), std::move(chunks));
  }
  return Status::InvalidArgument("unknown pragma '" + stmt.name + "'");
}

Result<std::unique_ptr<StreamingQueryResult>> Connection::SendQuery(
    const std::string& sql) {
  MALLARD_ASSIGN_OR_RETURN(auto statements, Parser::Parse(sql));
  if (statements.size() != 1 ||
      statements[0]->type != StatementType::kSelect) {
    return Status::InvalidArgument(
        "SendQuery supports exactly one SELECT statement");
  }
  Planner planner(&db_->catalog(), &db_->governor());
  MALLARD_ASSIGN_OR_RETURN(auto plan, planner.PlanStatement(*statements[0]));
  PhysicalOperator* raw = plan.plan.get();
  return StreamPlan(std::move(plan.plan), raw, std::move(plan.names),
                    std::move(plan.types));
}

Result<std::unique_ptr<StreamingQueryResult>> Connection::StreamPlan(
    std::unique_ptr<PhysicalOperator> owned_plan, PhysicalOperator* plan,
    std::vector<std::string> names, std::vector<TypeId> types,
    std::shared_ptr<void> lease) {
  // An open stream is an executing query: it holds its admission slot
  // and fair-share ticket until Close, so a client that opens a stream
  // and fetches slowly still counts against concurrency and fairness.
  MALLARD_ASSIGN_OR_RETURN(auto slot, AdmitSlot());
  auto ticket = db_->scheduler().RegisterQuery(session_id_, priority_weight_);
  bool owns = !transaction_;
  std::unique_ptr<Transaction> txn;
  if (owns) {
    txn = db_->transactions().Begin();
  }
  return std::make_unique<StreamingQueryResult>(
      this, std::move(owned_plan), plan, std::move(names), std::move(types),
      owns, std::move(txn), std::move(lease), std::move(ticket),
      std::move(slot));
}

Result<std::unique_ptr<PreparedStatement>> Connection::Prepare(
    const std::string& sql) {
  MALLARD_ASSIGN_OR_RETURN(auto statements, Parser::Parse(sql));
  if (statements.size() != 1) {
    return Status::InvalidArgument(
        "Prepare expects exactly one statement, got " +
        std::to_string(statements.size()));
  }
  auto parameters = std::make_shared<BoundParameterData>();
  Planner planner(&db_->catalog(), &db_->governor());
  planner.SetParameterData(parameters);
  uint64_t catalog_version = db_->catalog().version();
  MALLARD_ASSIGN_OR_RETURN(auto plan, planner.PlanStatement(*statements[0]));
  // $N numbering must be gapless: a skipped slot would demand a binding
  // for a parameter that appears nowhere in the SQL.
  for (idx_t i = 0; i < parameters->Count(); i++) {
    if (!parameters->referenced[i]) {
      return Status::Binder(
          "parameter $" + std::to_string(i + 1) +
          " is never referenced; parameters must be numbered "
          "consecutively from $1");
    }
  }
  return std::unique_ptr<PreparedStatement>(new PreparedStatement(
      this, std::move(statements[0]), std::move(parameters), std::move(plan),
      catalog_version));
}

StreamingQueryResult::StreamingQueryResult(
    Connection* connection, std::unique_ptr<PhysicalOperator> owned_plan,
    PhysicalOperator* plan, std::vector<std::string> names,
    std::vector<TypeId> types, bool owns_transaction,
    std::unique_ptr<Transaction> txn, std::shared_ptr<void> lease,
    std::unique_ptr<QueryTicket> ticket, std::shared_ptr<void> admission)
    : QueryResult(std::move(names), std::move(types)),
      connection_(connection),
      owned_plan_(std::move(owned_plan)),
      plan_(plan),
      owns_transaction_(owns_transaction),
      txn_(std::move(txn)),
      lease_(std::move(lease)),
      ticket_(std::move(ticket)),
      admission_(std::move(admission)) {}

StreamingQueryResult::~StreamingQueryResult() {
  Status status = Close();
  (void)status;
}

Result<std::unique_ptr<DataChunk>> StreamingQueryResult::Fetch() {
  if (done_) return std::unique_ptr<DataChunk>();
  ExecutionContext context;
  connection_->SetupContext(&context,
                            owns_transaction_
                                ? txn_.get()
                                : connection_->transaction_.get(),
                            ticket_.get());
  MALLARD_RETURN_NOT_OK(context.CheckInterrupt());
  auto chunk = std::make_unique<DataChunk>();
  chunk->Initialize(types_);
  MALLARD_RETURN_NOT_OK(plan_->GetChunk(&context, chunk.get()));
  if (chunk->size() == 0) {
    MALLARD_RETURN_NOT_OK(Close());
    return std::unique_ptr<DataChunk>();
  }
  return chunk;
}

Status StreamingQueryResult::Close() {
  if (done_) return Status::OK();
  done_ = true;
  lease_.reset();  // the borrowed plan may be rewound/re-planned again
  ticket_.reset();
  admission_.reset();
  // The stream was this connection's running statement; closing it
  // consumes a pending interrupt just like statement completion does.
  connection_->interrupt_.store(false, std::memory_order_relaxed);
  if (owns_transaction_ && txn_) {
    Status status =
        connection_->db_->transactions().Commit(txn_.get());
    txn_.reset();
    return status;
  }
  return Status::OK();
}

}  // namespace mallard
