#include "mallard/main/prepared_statement.h"

#include "mallard/main/connection.h"
#include "mallard/main/database.h"

namespace mallard {

PreparedStatement::PreparedStatement(
    Connection* connection, std::unique_ptr<SQLStatement> statement,
    std::shared_ptr<BoundParameterData> parameters, PreparedPlan plan,
    uint64_t catalog_version)
    : connection_(connection),
      statement_(std::move(statement)),
      parameters_(std::move(parameters)),
      plan_(std::move(plan)),
      catalog_version_(catalog_version) {}

PreparedStatement::~PreparedStatement() = default;

TypeId PreparedStatement::ParameterType(idx_t index) const {
  if (index < 1 || index > parameters_->Count()) return TypeId::kInvalid;
  return parameters_->types[index - 1];
}

Status PreparedStatement::Bind(idx_t index, Value value) {
  if (index < 1 || index > parameters_->Count()) {
    return Status::InvalidArgument(
        "parameter index " + std::to_string(index) + " out of range (" +
        "statement has " + std::to_string(parameters_->Count()) +
        " parameters, indexes are 1-based)");
  }
  idx_t slot = index - 1;
  TypeId target = parameters_->types[slot];
  if (target != TypeId::kInvalid && !value.is_null() &&
      value.type() != target) {
    // Eager type check: surface mismatches at bind time.
    auto cast = value.CastTo(target);
    if (!cast.ok()) {
      return Status::InvalidArgument(
          "cannot bind value '" + value.ToString() + "' to parameter $" +
          std::to_string(index) + " of type " + TypeIdToString(target) +
          ": " + cast.status().message());
    }
    value = std::move(*cast);
  }
  parameters_->values[slot] = std::move(value);
  parameters_->is_set[slot] = true;
  return Status::OK();
}

Status PreparedStatement::CheckAllBound() const {
  for (idx_t i = 0; i < parameters_->Count(); i++) {
    if (!parameters_->is_set[i]) {
      return Status::InvalidArgument(
          "cannot execute prepared statement: parameter $" +
          std::to_string(i + 1) + " has not been bound");
    }
  }
  return Status::OK();
}

Status PreparedStatement::CheckNoOpenStream() const {
  if (!stream_lease_.expired()) {
    return Status::InvalidArgument(
        "cannot execute: a streaming result of this prepared statement "
        "is still open; Close() or destroy it first");
  }
  return Status::OK();
}

Status PreparedStatement::EnsureCurrentPlan() {
  uint64_t current = connection_->database().catalog().version();
  if (current == catalog_version_) return Status::OK();
  // DDL happened since planning: re-plan from the stored AST. Parameter
  // values and previously inferred types survive in the shared slot; a
  // dropped table surfaces here as a catalog/binder error.
  Planner planner(&connection_->database().catalog(),
                  &connection_->database().governor());
  planner.SetParameterData(parameters_);
  MALLARD_ASSIGN_OR_RETURN(plan_, planner.PlanStatement(*statement_));
  catalog_version_ = current;
  return Status::OK();
}

Result<std::unique_ptr<MaterializedQueryResult>> PreparedStatement::Execute() {
  MALLARD_RETURN_NOT_OK(CheckNoOpenStream());
  MALLARD_RETURN_NOT_OK(CheckAllBound());
  MALLARD_RETURN_NOT_OK(EnsureCurrentPlan());
  // Rewind the cached plan in place: no re-parse, no re-plan.
  MALLARD_RETURN_NOT_OK(plan_.plan->Reset());
  return connection_->ExecutePhysicalPlan(plan_.plan.get(), plan_.names,
                                          plan_.types);
}

Result<std::unique_ptr<StreamingQueryResult>>
PreparedStatement::ExecuteStream() {
  if (statement_->type != StatementType::kSelect) {
    return Status::InvalidArgument(
        "ExecuteStream supports SELECT statements only");
  }
  MALLARD_RETURN_NOT_OK(CheckNoOpenStream());
  MALLARD_RETURN_NOT_OK(CheckAllBound());
  MALLARD_RETURN_NOT_OK(EnsureCurrentPlan());
  MALLARD_RETURN_NOT_OK(plan_.plan->Reset());
  // The statement keeps plan ownership so it stays re-executable; the
  // stream borrows it (and holds a lease so overlapping executions are
  // rejected) and must not outlive this object.
  auto lease = std::make_shared<char>();
  stream_lease_ = lease;
  return connection_->StreamPlan(nullptr, plan_.plan.get(), plan_.names,
                                 plan_.types, std::move(lease));
}

}  // namespace mallard
