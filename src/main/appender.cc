#include "mallard/main/appender.h"

#include "mallard/storage/wal.h"

namespace mallard {

Appender::Appender(Database* db, DataTable* table)
    : db_(db), table_(table) {
  chunk_.Initialize(table->ColumnTypes());
}

Result<std::unique_ptr<Appender>> Appender::Create(Database* db,
                                                   const std::string& table) {
  MALLARD_ASSIGN_OR_RETURN(DataTable * data_table,
                           db->catalog().GetTable(table));
  return std::unique_ptr<Appender>(new Appender(db, data_table));
}

Appender::~Appender() {
  Status status = Close();
  (void)status;
}

Appender& Appender::Append(bool value) {
  return Append(Value::Boolean(value));
}
Appender& Appender::Append(int32_t value) {
  return Append(Value::Integer(value));
}
Appender& Appender::Append(int64_t value) {
  return Append(Value::BigInt(value));
}
Appender& Appender::Append(double value) {
  return Append(Value::Double(value));
}
Appender& Appender::Append(const char* value) {
  return Append(Value::Varchar(value));
}
Appender& Appender::Append(const std::string& value) {
  return Append(Value::Varchar(value));
}

Appender& Appender::Append(const Value& value) {
  if (!pending_error_.ok() || closed_) return *this;
  if (column_ >= chunk_.ColumnCount()) {
    pending_error_ = Status::InvalidArgument("too many values in row");
    return *this;
  }
  TypeId target = chunk_.column(column_).type();
  Value v = value;
  if (!v.is_null() && v.type() != target) {
    auto cast = v.CastTo(target);
    if (!cast.ok()) {
      pending_error_ = cast.status();
      return *this;
    }
    v = std::move(*cast);
  }
  chunk_.SetValue(column_, chunk_.size(), v);
  column_++;
  return *this;
}

Appender& Appender::AppendNull() {
  if (closed_ || !pending_error_.ok()) return *this;
  if (column_ >= chunk_.ColumnCount()) {
    pending_error_ = Status::InvalidArgument("too many values in row");
    return *this;
  }
  chunk_.column(column_).validity().SetInvalid(chunk_.size());
  column_++;
  return *this;
}

Status Appender::EndRow() {
  MALLARD_RETURN_NOT_OK(pending_error_);
  if (closed_) return Status::InvalidArgument("appender is closed");
  if (column_ != chunk_.ColumnCount()) {
    return Status::InvalidArgument("row is missing values");
  }
  chunk_.SetCardinality(chunk_.size() + 1);
  column_ = 0;
  rows_appended_++;
  if (chunk_.size() == kVectorSize) {
    return Flush();
  }
  return Status::OK();
}

Status Appender::AppendChunk(const DataChunk& chunk) {
  MALLARD_RETURN_NOT_OK(pending_error_);
  if (closed_) return Status::InvalidArgument("appender is closed");
  MALLARD_RETURN_NOT_OK(Flush());  // keep ordering of buffered rows
  auto txn = db_->transactions().Begin();
  Status status = table_->Append(txn.get(), chunk);
  if (!status.ok()) {
    db_->transactions().Rollback(txn.get());
    return status;
  }
  txn->wal_records().push_back(wal_record::Append(table_->name(), chunk));
  rows_appended_ += chunk.size();
  return db_->transactions().Commit(txn.get());
}

Status Appender::Flush() {
  MALLARD_RETURN_NOT_OK(pending_error_);
  if (chunk_.size() == 0) return Status::OK();
  auto txn = db_->transactions().Begin();
  Status status = table_->Append(txn.get(), chunk_);
  if (!status.ok()) {
    db_->transactions().Rollback(txn.get());
    return status;
  }
  txn->wal_records().push_back(wal_record::Append(table_->name(), chunk_));
  Status commit = db_->transactions().Commit(txn.get());
  chunk_.Reset();
  return commit;
}

Status Appender::Close() {
  if (closed_) return Status::OK();
  Status status = Flush();
  closed_ = true;
  return status;
}

}  // namespace mallard
