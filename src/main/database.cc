#include "mallard/main/database.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "mallard/resilience/memtest.h"
#include "mallard/storage/checkpoint.h"

namespace mallard {

Database::Database(DBConfig config) : config_(config) {}

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 DBConfig config) {
  auto db = std::unique_ptr<Database>(new Database(config));
  MALLARD_RETURN_NOT_OK(db->Initialize(path));
  return db;
}

Status Database::Initialize(const std::string& path) {
  bool persistent = !path.empty() && path != ":memory:";
  path_ = persistent ? path : ":memory:";
  bool memtest = config_.verify_memory;
  if (!memtest) {
    if (const char* env = std::getenv("MALLARD_MEMTEST")) {
      memtest = std::atoi(env) != 0;
    }
  }
  if (memtest) {
    // Open-time self-test over a bounded scratch region — whole-RAM
    // testing is infeasible online (docs/RESILIENCE.md); the goal is to
    // catch a DIMM that is already flipping bits before the engine
    // starts trusting it with user data.
    std::vector<uint8_t> scratch(4ull << 20);
    DirectMemory mem(scratch.data(), scratch.size());
    MALLARD_RETURN_NOT_OK(RunMemorySelfTest(mem));
  }
  // An untouched memory_limit follows the MALLARD_MEMORY_LIMIT
  // environment variable (bytes) when set — CI runs the whole suite
  // under a tight budget this way (mirror of MALLARD_THREADS). An
  // explicit DBConfig value always wins.
  if (config_.memory_limit == DBConfig{}.memory_limit) {
    if (const char* env = std::getenv("MALLARD_MEMORY_LIMIT")) {
      uint64_t bytes = std::strtoull(env, nullptr, 10);
      if (bytes > 0) config_.memory_limit = bytes;
    }
  }
  buffers_ = std::make_unique<BufferManager>(
      config_.memory_limit, persistent ? path + ".tmp" : "");
  buffers_->EnableAllocationTesting(config_.memtest_on_allocation);
  GovernorConfig gc;
  gc.total_memory = config_.total_memory;
  gc.dbms_memory_limit = config_.memory_limit;
  // threads <= 0 = auto-detect: the MALLARD_THREADS environment variable
  // when set (CI pins the whole test suite to a thread count this way),
  // else exactly as parallel as the hardware.
  int auto_threads = 0;
  if (const char* env = std::getenv("MALLARD_THREADS")) {
    auto_threads = std::atoi(env);
  }
  if (auto_threads <= 0) {
    auto_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  gc.max_threads = config_.threads > 0 ? config_.threads : auto_threads;
  gc.reactive = config_.reactive;
  governor_ = std::make_unique<ResourceGovernor>(gc);
  governor_->SetBufferManager(buffers_.get());
  // Spilled buffers compress through the governor's pressure staircase
  // (none under light pressure, RLE, then LZ) — evicted intermediates
  // shrink exactly when memory is scarce.
  buffers_->SetSpillCompression(
      [gov = governor_.get()] { return gov->ChooseCompressionLevel(); });
  // Thread-less until the first parallel Run spawns workers.
  scheduler_ = std::make_unique<TaskScheduler>(governor_.get());
  admission_ = std::make_unique<AdmissionController>(governor_.get());
  admission_->SetBufferManager(buffers_.get());
  if (config_.max_active_queries > 0) {
    admission_->SetMaxActive(config_.max_active_queries);
  }
  admission_->SetQueueDepth(config_.admission_queue_depth);
  admission_->SetTimeoutMs(config_.admission_timeout_ms);

  if (persistent) {
    bool created = false;
    MALLARD_ASSIGN_OR_RETURN(
        blocks_, BlockManager::Open(path, config_.enable_checksums,
                                    &created));
    if (!created) {
      MALLARD_RETURN_NOT_OK(LoadCheckpoint(&catalog_, blocks_.get()));
    }
    MALLARD_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(path + ".wal"));
    MALLARD_ASSIGN_OR_RETURN(
        idx_t replayed,
        wal_->Replay(&catalog_, &transactions_, blocks_->header().iteration));
    (void)replayed;
    wal_->SetGovernor(governor_.get());
    transactions_.SetWal(wal_.get());
  }
  transactions_.SetCleanupHook([this](uint64_t lowest) {
    catalog_.ForEachTable(
        [lowest](DataTable* table) { table->CleanupUpdates(lowest); });
  });
  return Status::OK();
}

Status Database::Checkpoint() {
  if (in_memory()) return Status::OK();
  std::lock_guard<std::mutex> guard(checkpoint_lock_);
  // Online checkpoint: only commits stand still (the gate below);
  // readers keep scanning their MVCC snapshots and in-flight writers
  // keep executing — their uncommitted versions are invisible to the
  // checkpoint snapshot and stay recoverable via the WAL once they
  // commit after the gate drops.
  TransactionManager::CommitBlock commit_block(&transactions_);
  auto snapshot = transactions_.Begin();
  Status status = WriteCheckpoint(&catalog_, blocks_.get(), &transactions_,
                                  *snapshot, governor_.get());
  transactions_.Rollback(snapshot.get());
  MALLARD_RETURN_NOT_OK(status);
  // The WAL may be truncated only now: the new block tree and its root
  // are durable, and the commit gate guarantees no commit is sitting in
  // the WAL-durable-but-not-stamped window. The truncation stamps the
  // new root's iteration into the fresh log, so a crash between the two
  // steps is detected at replay (the stale log is skipped, not
  // re-applied) — the gate is still held here, which is what makes
  // "stale log == fully checkpointed log" true.
  if (wal_) MALLARD_RETURN_NOT_OK(wal_->Truncate(blocks_->header().iteration));
  return Status::OK();
}

Database::~Database() {
  if (!in_memory() && config_.checkpoint_on_close &&
      !transactions_.HasActiveTransactions()) {
    // Best-effort final checkpoint; committed data is already durable in
    // the WAL if this fails.
    Status status = Checkpoint();
    (void)status;
  } else if (wal_) {
    // Still flush any async-acknowledged commits before closing.
    Status status = wal_->FlushPending();
    (void)status;
  }
}

}  // namespace mallard
