#include "mallard/planner/planner.h"

#include <algorithm>
#include <map>

#include "mallard/common/string_util.h"
#include "mallard/etl/physical_csv_scan.h"
#include "mallard/execution/operators.h"
#include "mallard/execution/physical_aggregate.h"
#include "mallard/execution/physical_dml.h"
#include "mallard/execution/physical_sort.h"
#include "mallard/expression/expression_executor.h"
#include "mallard/expression/function_registry.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/parser/parser.h"

namespace mallard {

namespace {

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max";
}

AggType AggTypeFromName(const std::string& name, bool star) {
  if (name == "count") return star ? AggType::kCountStar : AggType::kCount;
  if (name == "sum") return AggType::kSum;
  if (name == "avg") return AggType::kAvg;
  if (name == "min") return AggType::kMin;
  return AggType::kMax;
}

bool ExprHasColumnRef(const BoundExpression& expr);

template <typename Fn>
void VisitChildren(const BoundExpression& expr, Fn fn) {
  switch (expr.expr_class()) {
    case ExprClass::kComparison: {
      const auto& e = static_cast<const BoundComparison&>(expr);
      fn(e.left());
      fn(e.right());
      break;
    }
    case ExprClass::kConjunction:
      for (const auto& c :
           static_cast<const BoundConjunction&>(expr).children()) {
        fn(*c);
      }
      break;
    case ExprClass::kArithmetic: {
      const auto& e = static_cast<const BoundArithmetic&>(expr);
      fn(e.left());
      fn(e.right());
      break;
    }
    case ExprClass::kFunction:
      for (const auto& a : static_cast<const BoundFunction&>(expr).args()) {
        fn(*a);
      }
      break;
    case ExprClass::kCast:
      fn(static_cast<const BoundCast&>(expr).child());
      break;
    case ExprClass::kIsNull:
      fn(static_cast<const BoundIsNull&>(expr).child());
      break;
    case ExprClass::kNot:
      fn(static_cast<const BoundNot&>(expr).child());
      break;
    case ExprClass::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      for (const auto& c : e.clauses()) {
        fn(*c.when);
        fn(*c.then);
      }
      if (e.else_expr()) fn(*e.else_expr());
      break;
    }
    case ExprClass::kInList:
      fn(static_cast<const BoundInList&>(expr).child());
      break;
    case ExprClass::kLike:
      fn(static_cast<const BoundLike&>(expr).child());
      break;
    default:
      break;
  }
}

bool ExprHasColumnRef(const BoundExpression& expr) {
  if (expr.expr_class() == ExprClass::kColumnRef) return true;
  bool found = false;
  VisitChildren(expr, [&](const BoundExpression& child) {
    if (ExprHasColumnRef(child)) found = true;
  });
  return found;
}

// Parameters look constant to the folder but change between executions of
// a prepared statement; expressions containing them must stay unfolded.
bool ExprHasParameter(const BoundExpression& expr) {
  if (expr.expr_class() == ExprClass::kParameter) return true;
  bool found = false;
  VisitChildren(expr, [&](const BoundExpression& child) {
    if (ExprHasParameter(child)) found = true;
  });
  return found;
}

void CollectColumnIndexes(const BoundExpression& expr, std::set<idx_t>* out) {
  if (expr.expr_class() == ExprClass::kColumnRef) {
    out->insert(static_cast<const BoundColumnRef&>(expr).index());
    return;
  }
  VisitChildren(expr, [&](const BoundExpression& child) {
    CollectColumnIndexes(child, out);
  });
}

// Rewrites column-ref indexes in place via `mapping[old] = new`.
Status RemapColumnRefs(BoundExpression* expr,
                       const std::map<idx_t, idx_t>& mapping) {
  if (expr->expr_class() == ExprClass::kColumnRef) {
    auto* ref = static_cast<BoundColumnRef*>(expr);
    auto it = mapping.find(ref->index());
    if (it == mapping.end()) {
      return Status::Internal("planner: unmapped column reference " +
                              ref->name());
    }
    *ref = BoundColumnRef(it->second, ref->return_type(), ref->name());
    return Status::OK();
  }
  Status status = Status::OK();
  switch (expr->expr_class()) {
    case ExprClass::kComparison: {
      auto* e = static_cast<BoundComparison*>(expr);
      MALLARD_RETURN_NOT_OK(RemapColumnRefs(e->mutable_left(), mapping));
      return RemapColumnRefs(e->mutable_right(), mapping);
    }
    case ExprClass::kConjunction: {
      auto* e = static_cast<BoundConjunction*>(expr);
      for (auto& c : e->mutable_children()) {
        MALLARD_RETURN_NOT_OK(RemapColumnRefs(c.get(), mapping));
      }
      return Status::OK();
    }
    default:
      break;
  }
  // Generic path: rebuild via Copy is wasteful; handle remaining classes
  // through const_cast-free accessors by reconstructing children.
  // For simplicity the remaining composite classes expose only const
  // children; remap via a copy-and-replace visitor.
  switch (expr->expr_class()) {
    case ExprClass::kArithmetic: {
      auto* e = static_cast<BoundArithmetic*>(expr);
      MALLARD_RETURN_NOT_OK(RemapColumnRefs(
          const_cast<BoundExpression*>(&e->left()), mapping));
      return RemapColumnRefs(const_cast<BoundExpression*>(&e->right()),
                             mapping);
    }
    case ExprClass::kFunction: {
      auto* e = static_cast<BoundFunction*>(expr);
      for (const auto& a : e->args()) {
        MALLARD_RETURN_NOT_OK(
            RemapColumnRefs(const_cast<BoundExpression*>(a.get()), mapping));
      }
      return Status::OK();
    }
    case ExprClass::kCast: {
      auto* e = static_cast<BoundCast*>(expr);
      return RemapColumnRefs(const_cast<BoundExpression*>(&e->child()),
                             mapping);
    }
    case ExprClass::kIsNull: {
      auto* e = static_cast<BoundIsNull*>(expr);
      return RemapColumnRefs(const_cast<BoundExpression*>(&e->child()),
                             mapping);
    }
    case ExprClass::kNot: {
      auto* e = static_cast<BoundNot*>(expr);
      return RemapColumnRefs(const_cast<BoundExpression*>(&e->child()),
                             mapping);
    }
    case ExprClass::kCase: {
      auto* e = static_cast<BoundCase*>(expr);
      for (const auto& c : e->clauses()) {
        MALLARD_RETURN_NOT_OK(RemapColumnRefs(
            const_cast<BoundExpression*>(c.when.get()), mapping));
        MALLARD_RETURN_NOT_OK(RemapColumnRefs(
            const_cast<BoundExpression*>(c.then.get()), mapping));
      }
      if (e->else_expr()) {
        MALLARD_RETURN_NOT_OK(RemapColumnRefs(
            const_cast<BoundExpression*>(e->else_expr()), mapping));
      }
      return Status::OK();
    }
    case ExprClass::kInList: {
      auto* e = static_cast<BoundInList*>(expr);
      return RemapColumnRefs(const_cast<BoundExpression*>(&e->child()),
                             mapping);
    }
    case ExprClass::kLike: {
      auto* e = static_cast<BoundLike*>(expr);
      return RemapColumnRefs(const_cast<BoundExpression*>(&e->child()),
                             mapping);
    }
    default:
      return status;
  }
}

// Rough cardinality estimate for join planning.
[[maybe_unused]] idx_t EstimateRows(const PhysicalOperator* op) {
  std::string n = op->name();
  if (StringUtil::StartsWith(n, "SEQ_SCAN")) {
    // Encoded row count unavailable here; handled by caller for scans.
    return 10000;
  }
  return 10000;
}

uint64_t EstimateBytes(PhysicalOperator* op, idx_t rows) {
  uint64_t width = 0;
  for (TypeId t : op->types()) width += TypeSize(t);
  return rows * std::max<uint64_t>(width, 8);
}

}  // namespace

// ===========================================================================
// Planner implementation
// ===========================================================================

struct Planner::Impl {
  Catalog* catalog;
  ResourceGovernor* governor;
  std::shared_ptr<BoundParameterData> parameters;  // null: params rejected

  // --- binding context ------------------------------------------------------
  struct Leaf {
    std::string alias;
    // Pruned visible columns.
    std::vector<std::string> names;
    std::vector<TypeId> types;
    std::vector<idx_t> source_column_ids;  // into base table / csv schema
    idx_t global_offset = 0;
    idx_t relation_id = 0;
    // Source (exactly one set):
    DataTable* table = nullptr;
    std::string csv_path;
    std::vector<TypeId> csv_file_types;
    std::unique_ptr<PhysicalOperator> subquery_plan;
    idx_t approx_rows = 1000;
    std::vector<TableFilter> scan_filters;  // zone-map filters (base only)
    std::vector<LateBoundTableFilter> late_filters;  // parameterized ones
  };

  std::vector<Leaf> leaves;

  // Aggregate-binding state.
  bool in_aggregate_query = false;
  const std::vector<PExpr>* group_exprs_parsed = nullptr;
  std::vector<ExprPtr>* bound_groups = nullptr;
  std::vector<BoundAggregate>* aggregates = nullptr;
  bool binding_agg_mode = false;  // bind against group/agg outputs
  int select_depth = 0;

  // -------------------------------------------------------------------------
  Result<std::pair<idx_t, idx_t>> ResolveColumn(const std::string& table,
                                                const std::string& column) {
    // Returns (global index, leaf index).
    idx_t found_global = kInvalidIndex, found_leaf = kInvalidIndex;
    for (idx_t l = 0; l < leaves.size(); l++) {
      if (!table.empty() && !StringUtil::CIEquals(leaves[l].alias, table)) {
        continue;
      }
      for (idx_t c = 0; c < leaves[l].names.size(); c++) {
        if (StringUtil::CIEquals(leaves[l].names[c], column)) {
          if (found_global != kInvalidIndex) {
            return Status::Binder("ambiguous column reference '" + column +
                                  "'");
          }
          found_global = leaves[l].global_offset + c;
          found_leaf = l;
        }
      }
    }
    if (found_global == kInvalidIndex) {
      return Status::Binder("column '" +
                            (table.empty() ? column : table + "." + column) +
                            "' not found");
    }
    return std::make_pair(found_global, found_leaf);
  }

  TypeId GlobalType(idx_t global) const {
    for (const auto& leaf : leaves) {
      if (global >= leaf.global_offset &&
          global < leaf.global_offset + leaf.types.size()) {
        return leaf.types[global - leaf.global_offset];
      }
    }
    return TypeId::kInvalid;
  }

  // --- type coercion --------------------------------------------------------

  /// An untyped parameter adopts the type required by its context.
  static void ResolveUntypedParameter(const ExprPtr& expr, TypeId target) {
    if (expr->expr_class() == ExprClass::kParameter &&
        expr->return_type() == TypeId::kInvalid &&
        target != TypeId::kInvalid) {
      static_cast<BoundParameter*>(expr.get())->ResolveType(target);
    }
  }

  static Result<std::pair<ExprPtr, ExprPtr>> CoerceToSame(ExprPtr left,
                                                          ExprPtr right) {
    ResolveUntypedParameter(left, right->return_type());
    ResolveUntypedParameter(right, left->return_type());
    // Two untyped parameters compared against each other: default VARCHAR.
    ResolveUntypedParameter(left, TypeId::kVarchar);
    ResolveUntypedParameter(right, left->return_type());
    TypeId lt = left->return_type(), rt = right->return_type();
    if (lt == rt) return std::make_pair(std::move(left), std::move(right));
    TypeId target;
    if (TypeIsNumeric(lt) && TypeIsNumeric(rt)) {
      target = MaxNumericType(lt, rt);
    } else if (lt == TypeId::kVarchar && rt != TypeId::kVarchar) {
      target = rt;
    } else if (rt == TypeId::kVarchar && lt != TypeId::kVarchar) {
      target = lt;
    } else if ((lt == TypeId::kDate && rt == TypeId::kTimestamp) ||
               (lt == TypeId::kTimestamp && rt == TypeId::kDate)) {
      target = TypeId::kTimestamp;
    } else if (TypeCanCast(lt, rt)) {
      target = rt;
    } else {
      return Status::Binder(StringUtil::Format(
          "cannot compare values of type %s and %s", TypeIdToString(lt),
          TypeIdToString(rt)));
    }
    if (lt != target) left = std::make_unique<BoundCast>(std::move(left), target);
    if (rt != target) {
      right = std::make_unique<BoundCast>(std::move(right), target);
    }
    return std::make_pair(std::move(left), std::move(right));
  }

  static ExprPtr CastTo(ExprPtr expr, TypeId target) {
    ResolveUntypedParameter(expr, target);
    if (expr->return_type() == target) return expr;
    return std::make_unique<BoundCast>(std::move(expr), target);
  }

  // Folds expressions without column references into constants.
  static ExprPtr Fold(ExprPtr expr) {
    if (expr->expr_class() == ExprClass::kConstant) return expr;
    if (ExprHasColumnRef(*expr)) return expr;
    if (ExprHasParameter(*expr)) return expr;
    auto value = ExpressionExecutor::ExecuteScalar(*expr, {});
    if (!value.ok()) return expr;  // fold lazily; runtime will error
    Value v = *value;
    if (v.type() != expr->return_type() && v.type() == TypeId::kInvalid) {
      v = Value::Null(expr->return_type());
    }
    return std::make_unique<BoundConstant>(std::move(v));
  }

  // --- expression binding ---------------------------------------------------

  Result<ExprPtr> Bind(const ParsedExpression& expr) {
    // In aggregate mode, expressions matching a GROUP BY item bind to the
    // aggregate operator's group output.
    if (binding_agg_mode && group_exprs_parsed) {
      for (idx_t g = 0; g < group_exprs_parsed->size(); g++) {
        if (expr.Equals(*(*group_exprs_parsed)[g])) {
          return ExprPtr(std::make_unique<BoundColumnRef>(
              g, (*bound_groups)[g]->return_type(), expr.ToString()));
        }
      }
    }
    switch (expr.type) {
      case PExprType::kConstant: {
        return ExprPtr(std::make_unique<BoundConstant>(expr.constant));
      }
      case PExprType::kParameter: {
        if (!parameters) {
          return Status::Binder(
              "statement contains parameters ($" +
              std::to_string(expr.parameter_index + 1) +
              "); use Connection::Prepare to execute it");
        }
        parameters->EnsureSize(expr.parameter_index + 1);
        parameters->referenced[expr.parameter_index] = true;
        return ExprPtr(std::make_unique<BoundParameter>(
            expr.parameter_index, parameters,
            parameters->types[expr.parameter_index]));
      }
      case PExprType::kColumnRef: {
        if (binding_agg_mode) {
          return Status::Binder("column '" + expr.name +
                                "' must appear in the GROUP BY clause or be "
                                "used in an aggregate function");
        }
        MALLARD_ASSIGN_OR_RETURN(auto resolved,
                                 ResolveColumn(expr.table_name, expr.name));
        return ExprPtr(std::make_unique<BoundColumnRef>(
            resolved.first, GlobalType(resolved.first), expr.ToString()));
      }
      case PExprType::kComparison: {
        MALLARD_ASSIGN_OR_RETURN(auto left, Bind(*expr.children[0]));
        MALLARD_ASSIGN_OR_RETURN(auto right, Bind(*expr.children[1]));
        MALLARD_ASSIGN_OR_RETURN(
            auto pair, CoerceToSame(std::move(left), std::move(right)));
        return Fold(std::make_unique<BoundComparison>(
            expr.compare_op, std::move(pair.first), std::move(pair.second)));
      }
      case PExprType::kConjunction: {
        std::vector<ExprPtr> children;
        for (const auto& child : expr.children) {
          MALLARD_ASSIGN_OR_RETURN(auto bound, Bind(*child));
          if (bound->return_type() != TypeId::kBoolean) {
            bound = CastTo(std::move(bound), TypeId::kBoolean);
          }
          children.push_back(std::move(bound));
        }
        return Fold(std::make_unique<BoundConjunction>(expr.is_and,
                                                       std::move(children)));
      }
      case PExprType::kArithmetic:
        return BindArithmetic(expr);
      case PExprType::kFunction:
        return BindFunction(expr);
      case PExprType::kCast: {
        MALLARD_ASSIGN_OR_RETURN(auto child, Bind(*expr.children[0]));
        if (!TypeCanCast(child->return_type(), expr.cast_type)) {
          return Status::Binder(StringUtil::Format(
              "cannot cast %s to %s",
              TypeIdToString(child->return_type()),
              TypeIdToString(expr.cast_type)));
        }
        return Fold(
            std::make_unique<BoundCast>(std::move(child), expr.cast_type));
      }
      case PExprType::kIsNull: {
        MALLARD_ASSIGN_OR_RETURN(auto child, Bind(*expr.children[0]));
        return Fold(
            std::make_unique<BoundIsNull>(std::move(child), expr.negated));
      }
      case PExprType::kNot: {
        MALLARD_ASSIGN_OR_RETURN(auto child, Bind(*expr.children[0]));
        if (child->return_type() != TypeId::kBoolean) {
          child = CastTo(std::move(child), TypeId::kBoolean);
        }
        return Fold(std::make_unique<BoundNot>(std::move(child)));
      }
      case PExprType::kBetween: {
        // Desugar: x BETWEEN a AND b -> x >= a AND x <= b.
        MALLARD_ASSIGN_OR_RETURN(auto low_x, Bind(*expr.children[0]));
        MALLARD_ASSIGN_OR_RETURN(auto low, Bind(*expr.children[1]));
        MALLARD_ASSIGN_OR_RETURN(auto high_x, Bind(*expr.children[0]));
        MALLARD_ASSIGN_OR_RETURN(auto high, Bind(*expr.children[2]));
        MALLARD_ASSIGN_OR_RETURN(
            auto p1, CoerceToSame(std::move(low_x), std::move(low)));
        MALLARD_ASSIGN_OR_RETURN(
            auto p2, CoerceToSame(std::move(high_x), std::move(high)));
        std::vector<ExprPtr> conj;
        conj.push_back(std::make_unique<BoundComparison>(
            CompareOp::kGreaterEqual, std::move(p1.first),
            std::move(p1.second)));
        conj.push_back(std::make_unique<BoundComparison>(
            CompareOp::kLessEqual, std::move(p2.first),
            std::move(p2.second)));
        ExprPtr result =
            std::make_unique<BoundConjunction>(true, std::move(conj));
        if (expr.negated) {
          result = std::make_unique<BoundNot>(std::move(result));
        }
        return Fold(std::move(result));
      }
      case PExprType::kInList: {
        MALLARD_ASSIGN_OR_RETURN(auto child, Bind(*expr.children[0]));
        std::vector<Value> values;
        for (size_t i = 1; i < expr.children.size(); i++) {
          MALLARD_ASSIGN_OR_RETURN(auto item, Bind(*expr.children[i]));
          item = Fold(std::move(item));
          if (item->expr_class() != ExprClass::kConstant) {
            return Status::Binder("IN list elements must be constants");
          }
          Value v = static_cast<BoundConstant&>(*item).value();
          MALLARD_ASSIGN_OR_RETURN(v, v.CastTo(child->return_type()));
          values.push_back(std::move(v));
        }
        return Fold(std::make_unique<BoundInList>(
            std::move(child), std::move(values), expr.negated));
      }
      case PExprType::kLike: {
        MALLARD_ASSIGN_OR_RETURN(auto child, Bind(*expr.children[0]));
        child = CastTo(std::move(child), TypeId::kVarchar);
        MALLARD_ASSIGN_OR_RETURN(auto pattern, Bind(*expr.children[1]));
        pattern = Fold(std::move(pattern));
        if (pattern->expr_class() != ExprClass::kConstant) {
          return Status::Binder("LIKE pattern must be a constant");
        }
        const Value& pv = static_cast<BoundConstant&>(*pattern).value();
        return Fold(std::make_unique<BoundLike>(
            std::move(child), pv.GetString(), expr.negated));
      }
      case PExprType::kCase: {
        std::vector<BoundCase::Clause> clauses;
        size_t n = expr.children.size() - (expr.has_else ? 1 : 0);
        TypeId result_type = TypeId::kInvalid;
        std::vector<ExprPtr> thens;
        std::vector<ExprPtr> whens;
        for (size_t i = 0; i + 1 < n + 1 && i + 1 < expr.children.size() &&
                           i / 2 * 2 == i && i + 1 <= n;
             i += 2) {
          if (i + 1 >= n) break;
          MALLARD_ASSIGN_OR_RETURN(auto when, Bind(*expr.children[i]));
          when = CastTo(std::move(when), TypeId::kBoolean);
          MALLARD_ASSIGN_OR_RETURN(auto then, Bind(*expr.children[i + 1]));
          if (result_type == TypeId::kInvalid) {
            result_type = then->return_type();
          } else if (then->return_type() != result_type) {
            if (TypeIsNumeric(result_type) &&
                TypeIsNumeric(then->return_type())) {
              result_type = MaxNumericType(result_type, then->return_type());
            }
          }
          whens.push_back(std::move(when));
          thens.push_back(std::move(then));
        }
        ExprPtr else_expr;
        if (expr.has_else) {
          MALLARD_ASSIGN_OR_RETURN(else_expr, Bind(*expr.children.back()));
          if (result_type == TypeId::kInvalid) {
            result_type = else_expr->return_type();
          } else if (else_expr->return_type() != result_type &&
                     TypeIsNumeric(result_type) &&
                     TypeIsNumeric(else_expr->return_type())) {
            result_type =
                MaxNumericType(result_type, else_expr->return_type());
          }
        }
        for (size_t i = 0; i < thens.size(); i++) {
          clauses.push_back(BoundCase::Clause{
              std::move(whens[i]), CastTo(std::move(thens[i]), result_type)});
        }
        if (else_expr) else_expr = CastTo(std::move(else_expr), result_type);
        return Fold(std::make_unique<BoundCase>(
            result_type, std::move(clauses), std::move(else_expr)));
      }
      case PExprType::kStar:
        return Status::Binder("'*' is only allowed in the select list or "
                              "COUNT(*)");
    }
    return Status::Binder("unsupported expression");
  }

  Result<ExprPtr> BindArithmetic(const ParsedExpression& expr) {
    // Date +/- INTERVAL handling (parser marks interval constants).
    const ParsedExpression& lp = *expr.children[0];
    const ParsedExpression& rp = *expr.children[1];
    bool right_interval = rp.type == PExprType::kConstant &&
                          StringUtil::StartsWith(rp.name, "interval_");
    if (right_interval) {
      MALLARD_ASSIGN_OR_RETURN(auto left, Bind(lp));
      left = Fold(std::move(left));
      if (left->return_type() != TypeId::kDate) {
        return Status::Binder("INTERVAL arithmetic requires a DATE operand");
      }
      int32_t quantity = rp.constant.GetInteger();
      if (expr.arith_op == ArithOp::kSubtract) quantity = -quantity;
      if (left->expr_class() == ExprClass::kConstant) {
        const Value& v = static_cast<BoundConstant&>(*left).value();
        if (v.is_null()) {
          return ExprPtr(
              std::make_unique<BoundConstant>(Value::Null(TypeId::kDate)));
        }
        int32_t days = v.GetDate();
        int32_t y, m, d;
        date::ToYMD(days, &y, &m, &d);
        if (rp.name == "interval_day") {
          days += quantity;
        } else if (rp.name == "interval_month") {
          int32_t months = y * 12 + (m - 1) + quantity;
          y = months / 12;
          m = months % 12 + 1;
          days = date::FromYMD(y, m, d);
        } else if (rp.name == "interval_year") {
          days = date::FromYMD(y + quantity, m, d);
        } else {
          return Status::Binder("unsupported interval unit " + rp.name);
        }
        return ExprPtr(
            std::make_unique<BoundConstant>(Value::Date(days)));
      }
      if (rp.name != "interval_day") {
        return Status::NotImplemented(
            "non-constant date +/- month/year interval");
      }
      // date column + N days: integer arithmetic then cast back.
      ExprPtr as_int = CastTo(std::move(left), TypeId::kInteger);
      ExprPtr delta = std::make_unique<BoundConstant>(
          Value::Integer(quantity < 0 ? -quantity : quantity));
      ExprPtr sum = std::make_unique<BoundArithmetic>(
          quantity < 0 ? ArithOp::kSubtract : ArithOp::kAdd, TypeId::kInteger,
          std::move(as_int), std::move(delta));
      return ExprPtr(CastTo(std::move(sum), TypeId::kDate));
    }
    MALLARD_ASSIGN_OR_RETURN(auto left, Bind(lp));
    MALLARD_ASSIGN_OR_RETURN(auto right, Bind(rp));
    // Date - date => integer days.
    if (left->return_type() == TypeId::kDate &&
        right->return_type() == TypeId::kDate &&
        expr.arith_op == ArithOp::kSubtract) {
      left = CastTo(std::move(left), TypeId::kInteger);
      right = CastTo(std::move(right), TypeId::kInteger);
      return Fold(std::make_unique<BoundArithmetic>(
          ArithOp::kSubtract, TypeId::kInteger, std::move(left),
          std::move(right)));
    }
    if (!TypeIsNumeric(left->return_type())) {
      left = CastTo(std::move(left), TypeId::kDouble);
    }
    if (!TypeIsNumeric(right->return_type())) {
      right = CastTo(std::move(right), TypeId::kDouble);
    }
    TypeId result =
        MaxNumericType(left->return_type(), right->return_type());
    if (expr.arith_op == ArithOp::kDivide && result != TypeId::kDouble) {
      // SQL-friendly: '/' on integers promotes to double (use % for mod).
      result = TypeId::kDouble;
    }
    left = CastTo(std::move(left), result);
    right = CastTo(std::move(right), result);
    return Fold(std::make_unique<BoundArithmetic>(
        expr.arith_op, result, std::move(left), std::move(right)));
  }

  Result<ExprPtr> BindFunction(const ParsedExpression& expr) {
    if (IsAggregateName(expr.name)) {
      if (!in_aggregate_query || !aggregates) {
        return Status::Binder("aggregate function " + expr.name +
                              "() is not allowed here");
      }
      if (!binding_agg_mode) {
        return Status::Binder("nested aggregate functions are not allowed");
      }
      bool star = !expr.children.empty() &&
                  expr.children[0]->type == PExprType::kStar;
      AggType agg_type = AggTypeFromName(expr.name, star);
      BoundAggregate agg;
      agg.type = agg_type;
      if (!star) {
        if (expr.children.size() != 1) {
          return Status::Binder(expr.name + "() takes exactly one argument");
        }
        // Bind the argument against the *input* columns (plain mode).
        binding_agg_mode = false;
        auto arg = Bind(*expr.children[0]);
        binding_agg_mode = true;
        if (!arg.ok()) return arg.status();
        agg.arg = std::move(*arg);
        if ((agg_type == AggType::kSum || agg_type == AggType::kAvg) &&
            !TypeIsNumeric(agg.arg->return_type())) {
          return Status::Binder(expr.name + "() requires a numeric argument");
        }
        agg.return_type = AggregateFunction::ResolveType(
            agg_type, agg.arg->return_type());
      } else {
        agg.return_type = TypeId::kBigInt;
      }
      // Reuse an identical aggregate already requested by another clause
      // (SELECT sum(v) ... HAVING sum(v) > 4 computes one sum).
      for (idx_t i = 0; i < aggregates->size(); i++) {
        const BoundAggregate& existing = (*aggregates)[i];
        bool same_arg =
            (!existing.arg && !agg.arg) ||
            (existing.arg && agg.arg &&
             existing.arg->ToString() == agg.arg->ToString());
        if (existing.type == agg.type && same_arg) {
          return ExprPtr(std::make_unique<BoundColumnRef>(
              bound_groups->size() + i, existing.return_type,
              expr.ToString()));
        }
      }
      idx_t index = bound_groups->size() + aggregates->size();
      TypeId type = agg.return_type;
      aggregates->push_back(std::move(agg));
      return ExprPtr(
          std::make_unique<BoundColumnRef>(index, type, expr.ToString()));
    }
    std::vector<ExprPtr> args;
    std::vector<TypeId> arg_types;
    for (const auto& child : expr.children) {
      MALLARD_ASSIGN_OR_RETURN(auto bound, Bind(*child));
      arg_types.push_back(bound->return_type());
      args.push_back(std::move(bound));
    }
    MALLARD_ASSIGN_OR_RETURN(auto resolution,
                             FunctionRegistry::Resolve(expr.name, arg_types));
    for (idx_t i = 0; i < args.size(); i++) {
      args[i] = CastTo(std::move(args[i]), resolution.arg_types[i]);
    }
    return Fold(std::make_unique<BoundFunction>(
        expr.name, resolution.return_type, std::move(args),
        resolution.impl));
  }

  // --- FROM planning ---------------------------------------------------------

  struct RelationPlan {
    std::unique_ptr<PhysicalOperator> plan;
    std::vector<idx_t> layout;  // global index per output position
    std::set<idx_t> relations;
    idx_t approx_rows = 1000;
  };

  static std::map<idx_t, idx_t> LayoutMapping(
      const std::vector<idx_t>& layout) {
    std::map<idx_t, idx_t> mapping;
    for (idx_t i = 0; i < layout.size(); i++) mapping[layout[i]] = i;
    return mapping;
  }

  // Collects referenced columns per alias from the whole statement.
  void CollectRefs(const ParsedExpression& expr,
                   std::vector<std::set<std::string>>* per_leaf,
                   bool* star_seen) {
    if (expr.type == PExprType::kStar) {
      *star_seen = true;
      return;
    }
    if (expr.type == PExprType::kColumnRef) {
      for (idx_t l = 0; l < leaves.size(); l++) {
        if (!expr.table_name.empty() &&
            !StringUtil::CIEquals(leaves[l].alias, expr.table_name)) {
          continue;
        }
        (*per_leaf)[l].insert(StringUtil::Lower(expr.name));
      }
      return;
    }
    for (const auto& child : expr.children) {
      CollectRefs(*child, per_leaf, star_seen);
    }
  }

  // Builds the physical scan for one leaf.
  Result<std::unique_ptr<PhysicalOperator>> BuildLeafScan(Leaf* leaf) {
    if (leaf->table) {
      std::vector<idx_t> column_ids = leaf->source_column_ids;
      leaf->approx_rows = leaf->table->ApproxRowCount();
      return std::unique_ptr<PhysicalOperator>(
          std::make_unique<PhysicalTableScan>(leaf->table, column_ids,
                                              leaf->scan_filters,
                                              leaf->types,
                                              leaf->late_filters));
    }
    if (!leaf->csv_path.empty()) {
      return std::unique_ptr<PhysicalOperator>(
          std::make_unique<PhysicalCsvScan>(leaf->csv_path, CsvOptions{},
                                            leaf->source_column_ids,
                                            leaf->csv_file_types,
                                            leaf->types));
    }
    if (leaf->subquery_plan) {
      // Prune subquery output with a projection if needed.
      if (leaf->source_column_ids.size() ==
          leaf->subquery_plan->types().size()) {
        return std::move(leaf->subquery_plan);
      }
      std::vector<ExprPtr> exprs;
      for (idx_t i = 0; i < leaf->source_column_ids.size(); i++) {
        idx_t src = leaf->source_column_ids[i];
        exprs.push_back(std::make_unique<BoundColumnRef>(
            src, leaf->types[i], leaf->names[i]));
      }
      return std::unique_ptr<PhysicalOperator>(
          std::make_unique<PhysicalProjection>(
              std::move(exprs), std::move(leaf->subquery_plan)));
    }
    return Status::Internal("leaf without a source");
  }

  std::unique_ptr<PhysicalOperator> MakeJoin(
      JoinType type, std::vector<JoinCondition> conditions,
      std::unique_ptr<PhysicalOperator> left,
      std::unique_ptr<PhysicalOperator> right, idx_t right_rows) {
    uint64_t build_bytes = EstimateBytes(right.get(), right_rows);
    JoinAlgorithm algo = governor_
                             ? governor_->ChooseJoinAlgorithm(build_bytes)
                             : JoinAlgorithm::kHash;
    if (algo == JoinAlgorithm::kMerge) {
      return std::make_unique<PhysicalMergeJoin>(
          type, std::move(conditions), std::move(left), std::move(right));
    }
    return std::make_unique<PhysicalHashJoin>(
        type, std::move(conditions), std::move(left), std::move(right));
  }

  ResourceGovernor* governor_ = nullptr;
};

// ===========================================================================
// Public entry points
// ===========================================================================

namespace {

// Flattens an AND tree into conjuncts.
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr->expr_class() == ExprClass::kConjunction) {
    auto* conj = static_cast<BoundConjunction*>(expr.get());
    if (conj->is_and()) {
      for (auto& child : conj->mutable_children()) {
        SplitConjuncts(std::move(child), out);
      }
      return;
    }
  }
  out->push_back(std::move(expr));
}

[[maybe_unused]] ExprPtr CombineConjuncts(std::vector<ExprPtr> exprs) {
  if (exprs.empty()) return nullptr;
  if (exprs.size() == 1) return std::move(exprs[0]);
  return std::make_unique<BoundConjunction>(true, std::move(exprs));
}

}  // namespace

// The full select planning routine lives in planner_select.cc; DML in
// planner_dml.cc. Impl is shared via this factory.
std::unique_ptr<Planner::Impl> MakePlannerImpl(Catalog* catalog,
                                               ResourceGovernor* governor) {
  auto impl = std::make_unique<Planner::Impl>();
  impl->catalog = catalog;
  impl->governor = governor;
  impl->governor_ = governor;
  return impl;
}

}  // namespace mallard

// Include the out-of-line planning logic (kept in separate files for
// readability; they are part of this translation unit to share Impl).
#include "planner_dml.inc"
#include "planner_select.inc"
