#include "mallard/resilience/scrubber.h"

#include <chrono>
#include <thread>

#include "mallard/catalog/catalog.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/resilience/retry_policy.h"
#include "mallard/storage/block_manager.h"
#include "mallard/storage/table/data_table.h"
#include "mallard/storage/wal.h"

namespace mallard {

void IntegrityScrubber::Pace() const {
  if (!governor_) return;
  uint64_t micros = governor_->ScrubPauseMicros();
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

ScrubReport IntegrityScrubber::Run() {
  ScrubReport report;
  ResilienceStats& stats = GlobalResilienceStats();
  stats.scrub_runs.fetch_add(1);

  auto record = [&](std::string object, Status status) {
    report.objects++;
    stats.scrub_objects.fetch_add(1);
    if (!status.ok()) {
      report.failures++;
      stats.scrub_failures.fetch_add(1);
      report.findings.push_back(
          ScrubFinding{std::move(object), false, status.ToString()});
    }
    Pace();
  };

  if (blocks_) {
    std::vector<block_id_t> live = blocks_->LiveBlocks();
    for (block_id_t id : live) {
      record("block " + std::to_string(id), blocks_->VerifyBlock(id));
    }
    report.findings.push_back(ScrubFinding{
        "blocks", true,
        std::to_string(live.size()) + " live blocks verified"});
  }

  if (wal_) {
    uint64_t frames = 0;
    Status wal_status = wal_->VerifyFrames(&frames);
    bool ok = wal_status.ok();
    record("wal", std::move(wal_status));
    if (ok) {
      report.findings.push_back(ScrubFinding{
          "wal", true, std::to_string(frames) + " frames verified"});
    }
  }

  if (catalog_) {
    catalog_->ForEachTable([&](DataTable* table) {
      idx_t groups = table->RowGroupCount();
      for (idx_t g = 0; g < groups; g++) {
        record("table '" + table->name() + "' row group " + std::to_string(g),
               table->ValidateGroup(g));
      }
      idx_t quarantined = table->QuarantinedGroupCount();
      report.findings.push_back(ScrubFinding{
          "table '" + table->name() + "'", quarantined == 0,
          std::to_string(groups) + " row groups verified, " +
              std::to_string(quarantined) + " quarantined"});
    });
  }

  return report;
}

}  // namespace mallard
