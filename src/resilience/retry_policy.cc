#include "mallard/resilience/retry_policy.h"

#include <chrono>
#include <mutex>
#include <thread>

namespace mallard {

ResilienceStats& GlobalResilienceStats() {
  static ResilienceStats* stats = new ResilienceStats();
  return *stats;
}

namespace {

std::mutex g_sleep_hook_mutex;
RetryPolicy::SleepFn g_sleep_hook;

}  // namespace

void RetryPolicy::SetGlobalSleepHook(SleepFn hook) {
  std::lock_guard<std::mutex> lock(g_sleep_hook_mutex);
  g_sleep_hook = std::move(hook);
}

void RetryPolicy::Sleep(uint64_t micros) {
  {
    std::lock_guard<std::mutex> lock(g_sleep_hook_mutex);
    if (g_sleep_hook) {
      g_sleep_hook(micros);
      return;
    }
  }
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace mallard
