#include "mallard/resilience/failure_model.h"

#include <cmath>

#include "mallard/common/random.h"

namespace mallard {

namespace {

// Converts a 30-day (window) failure probability to a daily hazard:
// p_window = 1 - (1 - h)^days  =>  h = 1 - (1 - p)^(1/days).
double DailyHazard(double p_window, int days) {
  return 1.0 - std::pow(1.0 - p_window, 1.0 / days);
}

void SimulateComponent(const ComponentRates& rates, int days,
                       uint64_t n_machines, RandomEngine* rng,
                       ComponentStats* stats) {
  double h1 = DailyHazard(rates.p_first_30d, days);
  double h2 = DailyHazard(rates.p_second_30d, days);
  stats->machines = n_machines;
  for (uint64_t m = 0; m < n_machines; m++) {
    // Window 1: healthy machine.
    bool failed = false;
    for (int d = 0; d < days && !failed; d++) {
      if (rng->NextBool(h1)) failed = true;
    }
    if (!failed) continue;
    stats->first_failures++;
    // Window 2: the machine now fails at the escalated rate — the
    // "two orders of magnitude" recidivism effect of the study.
    stats->recidivism_trials++;
    bool failed_again = false;
    for (int d = 0; d < days && !failed_again; d++) {
      if (rng->NextBool(h2)) failed_again = true;
    }
    if (failed_again) stats->second_failures++;
  }
}

}  // namespace

FailureModelResult SimulateFleet(const FailureModelConfig& config,
                                 uint64_t n_machines, uint64_t seed) {
  RandomEngine rng(seed);
  FailureModelResult result;
  SimulateComponent(config.cpu, config.window_days, n_machines, &rng,
                    &result.cpu);
  SimulateComponent(config.dram, config.window_days, n_machines, &rng,
                    &result.dram);
  SimulateComponent(config.disk, config.window_days, n_machines, &rng,
                    &result.disk);
  result.dram_corruptions_per_million = result.dram.PrFirst() * 1e6;
  return result;
}

}  // namespace mallard
