#include "mallard/resilience/fault_injector.h"

#include <unistd.h>

#include <cstdlib>

namespace mallard {

FaultInjector& FaultInjector::Get() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultSite site, double probability) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[static_cast<int>(site)].probability = probability;
}

void FaultInjector::ArmOnce(FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[static_cast<int>(site)].one_shots.fetch_add(1);
}

void FaultInjector::ArmTransient(FaultSite site, uint64_t failures) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[static_cast<int>(site)].transient_failures.store(
      static_cast<int64_t>(failures));
}

void FaultInjector::Disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& s = sites_[static_cast<int>(site)];
  s.probability = 0.0;
  s.one_shots.store(0);
  s.transient_failures.store(0);
  s.kill_countdown.store(-1);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : sites_) {
    s.probability = 0.0;
    s.one_shots.store(0);
    s.transient_failures.store(0);
    s.fire_count.store(0);
    s.kill_countdown.store(-1);
  }
}

void FaultInjector::ArmKillAfter(FaultSite site, uint64_t skip) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[static_cast<int>(site)].kill_countdown.store(
      static_cast<int64_t>(skip));
}

bool FaultInjector::ShouldKill(FaultSite site) {
  auto& s = sites_[static_cast<int>(site)];
  int64_t countdown = s.kill_countdown.load();
  while (countdown >= 0) {
    if (s.kill_countdown.compare_exchange_weak(countdown, countdown - 1)) {
      if (countdown == 0) {
        s.fire_count.fetch_add(1);
        return true;
      }
      return false;
    }
  }
  return false;
}

void FaultInjector::KillProcess() {
  // _exit, not abort/exit: no destructors, no stdio flush, no atexit —
  // whatever reached the kernel is all the next process gets to see.
  ::_exit(kKillExitCode);
}

bool FaultInjector::ShouldFire(FaultSite site) {
  auto& s = sites_[static_cast<int>(site)];
  int64_t shots = s.one_shots.load();
  while (shots > 0) {
    if (s.one_shots.compare_exchange_weak(shots, shots - 1)) {
      s.fire_count.fetch_add(1);
      return true;
    }
  }
  int64_t transient = s.transient_failures.load();
  while (transient > 0) {
    if (s.transient_failures.compare_exchange_weak(transient, transient - 1)) {
      s.fire_count.fetch_add(1);
      return true;
    }
  }
  if (s.probability > 0.0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (rng_.NextBool(s.probability)) {
      s.fire_count.fetch_add(1);
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::FlipRandomBit(void* data, uint64_t len) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t bit = rng_.Next() % (len * 8);
  static_cast<uint8_t*>(data)[bit / 8] ^= uint8_t(1) << (bit % 8);
  return bit;
}

uint64_t FaultInjector::FireCount(FaultSite site) const {
  return sites_[static_cast<int>(site)].fire_count.load();
}

}  // namespace mallard
