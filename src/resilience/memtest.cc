#include "mallard/resilience/memtest.h"

#include <algorithm>

namespace mallard {

void SimulatedDimm::WriteWord(uint64_t index, uint64_t value) {
  storage_[index] = value;
  // Coupling faults: writing the victim word disturbs a neighbor cell.
  for (const auto& f : faults_) {
    if (f.kind == MemoryFault::Kind::kCoupling && f.word_index == index) {
      storage_[f.neighbor_index] ^= uint64_t(1) << f.neighbor_bit;
    }
  }
}

uint64_t SimulatedDimm::ReadWord(uint64_t index) {
  uint64_t value = storage_[index];
  for (const auto& f : faults_) {
    if (f.word_index != index) continue;
    if (f.kind == MemoryFault::Kind::kStuckAtZero) {
      value &= ~(uint64_t(1) << f.bit);
    } else if (f.kind == MemoryFault::Kind::kStuckAtOne) {
      value |= uint64_t(1) << f.bit;
    }
  }
  return value;
}

namespace {
void RecordBad(MemtestResult* result, uint64_t word) {
  result->passed = false;
  if (result->bad_words.empty() || result->bad_words.back() != word) {
    result->bad_words.push_back(word);
  }
}
}  // namespace

MemtestResult WalkingBitsTest(MemoryDevice& mem) {
  MemtestResult result;
  uint64_t n = mem.SizeWords();
  result.words_tested = n;
  // Two passes: pattern and complement. Within a word we walk a single
  // set (then cleared) bit through 8 positions — a compromise between the
  // exhaustive 64-position walk and allocation-time latency.
  static const uint64_t kPatterns[] = {
      0x0101010101010101ULL, 0x0202020202020202ULL, 0x0404040404040404ULL,
      0x0808080808080808ULL, 0x1010101010101010ULL, 0x2020202020202020ULL,
      0x4040404040404040ULL, 0x8080808080808080ULL};
  for (uint64_t pattern : kPatterns) {
    for (uint64_t i = 0; i < n; i++) mem.WriteWord(i, pattern);
    for (uint64_t i = 0; i < n; i++) {
      if (mem.ReadWord(i) != pattern) RecordBad(&result, i);
    }
    uint64_t inverse = ~pattern;
    for (uint64_t i = 0; i < n; i++) mem.WriteWord(i, inverse);
    for (uint64_t i = 0; i < n; i++) {
      if (mem.ReadWord(i) != inverse) RecordBad(&result, i);
    }
    result.traffic_bytes += n * 8 * 4;
  }
  std::sort(result.bad_words.begin(), result.bad_words.end());
  result.bad_words.erase(
      std::unique(result.bad_words.begin(), result.bad_words.end()),
      result.bad_words.end());
  return result;
}

MemtestResult MovingInversionsTest(MemoryDevice& mem, uint64_t pattern,
                                   int iterations) {
  MemtestResult result;
  uint64_t n = mem.SizeWords();
  result.words_tested = n;
  for (int iter = 0; iter < iterations; iter++) {
    uint64_t p = (pattern << (iter % 64)) | (pattern >> (64 - (iter % 64)));
    if (p == 0) p = pattern;
    // Pass 1: fill ascending with pattern.
    for (uint64_t i = 0; i < n; i++) mem.WriteWord(i, p);
    // Pass 2: ascending — verify pattern, write complement. Writing the
    // complement immediately after reading exposes coupling to higher
    // addresses that a plain write/verify scan cannot see.
    for (uint64_t i = 0; i < n; i++) {
      if (mem.ReadWord(i) != p) RecordBad(&result, i);
      mem.WriteWord(i, ~p);
    }
    // Pass 3: descending — verify complement, write pattern. The reverse
    // direction exposes coupling to lower addresses.
    for (uint64_t i = n; i-- > 0;) {
      if (mem.ReadWord(i) != ~p) RecordBad(&result, i);
      mem.WriteWord(i, p);
    }
    // Final verify.
    for (uint64_t i = 0; i < n; i++) {
      if (mem.ReadWord(i) != p) RecordBad(&result, i);
    }
    result.traffic_bytes += n * 8 * 7;
  }
  std::sort(result.bad_words.begin(), result.bad_words.end());
  result.bad_words.erase(
      std::unique(result.bad_words.begin(), result.bad_words.end()),
      result.bad_words.end());
  return result;
}

MemtestResult AddressTest(MemoryDevice& mem) {
  MemtestResult result;
  uint64_t n = mem.SizeWords();
  result.words_tested = n;
  for (uint64_t i = 0; i < n; i++) mem.WriteWord(i, i);
  for (uint64_t i = 0; i < n; i++) {
    if (mem.ReadWord(i) != i) RecordBad(&result, i);
  }
  result.traffic_bytes += n * 8 * 2;
  return result;
}

Status RunMemorySelfTest(MemoryDevice& mem) {
  MemtestResult walking = WalkingBitsTest(mem);
  MemtestResult inversions =
      MovingInversionsTest(mem, 0x5555555555555555ull, /*iterations=*/1);
  MemtestResult address = AddressTest(mem);
  if (!walking.passed || !inversions.passed || !address.passed) {
    size_t bad = walking.bad_words.size() + inversions.bad_words.size() +
                 address.bad_words.size();
    return Status::HardwareFailure(
        "memory self-test failed: " + std::to_string(bad) +
        " word(s) misbehaved; refusing to run on unreliable RAM");
  }
  return Status::OK();
}

}  // namespace mallard
