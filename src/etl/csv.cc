#include "mallard/etl/csv.h"

#include <cstdlib>

#include "mallard/common/string_util.h"

namespace mallard {

namespace {

bool LooksLikeBigInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  for (; i < s.size(); i++) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool LooksLikeDate(const std::string& s) {
  if (s.size() < 8 || s.size() > 10) return false;
  int y, m, d;
  return std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) == 3;
}

// Widens `type` so it can hold `field`.
TypeId WidenType(TypeId type, const std::string& field) {
  if (field.empty()) return type;  // NULL: no information
  switch (type) {
    case TypeId::kInvalid:  // first non-null observation
      if (LooksLikeBigInt(field)) return TypeId::kBigInt;
      if (LooksLikeDouble(field)) return TypeId::kDouble;
      if (LooksLikeDate(field)) return TypeId::kDate;
      return TypeId::kVarchar;
    case TypeId::kBigInt:
      if (LooksLikeBigInt(field)) return TypeId::kBigInt;
      if (LooksLikeDouble(field)) return TypeId::kDouble;
      return TypeId::kVarchar;
    case TypeId::kDouble:
      if (LooksLikeDouble(field)) return TypeId::kDouble;
      return TypeId::kVarchar;
    case TypeId::kDate:
      if (LooksLikeDate(field)) return TypeId::kDate;
      return TypeId::kVarchar;
    default:
      return TypeId::kVarchar;
  }
}

}  // namespace

Result<std::unique_ptr<CsvReader>> CsvReader::Open(const std::string& path,
                                                   CsvOptions options) {
  auto reader =
      std::unique_ptr<CsvReader>(new CsvReader(path, options));
  MALLARD_RETURN_NOT_OK(reader->Initialize());
  return reader;
}

std::vector<TypeId> CsvReader::ColumnTypes() const {
  std::vector<TypeId> types;
  for (const auto& col : columns_) types.push_back(col.type);
  return types;
}

bool CsvReader::ReadRecord(std::vector<std::string>* fields, bool* saw_any) {
  fields->clear();
  *saw_any = false;
  std::string field;
  bool in_quotes = false;
  bool started = false;
  int c;
  while ((c = stream_.get()) != EOF) {
    started = true;
    if (in_quotes) {
      if (c == '"') {
        if (stream_.peek() == '"') {
          stream_.get();
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += static_cast<char>(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      continue;
    }
    if (c == options_.delimiter) {
      fields->push_back(std::move(field));
      field.clear();
      continue;
    }
    if (c == '\r') continue;
    if (c == '\n') {
      line_number_++;
      fields->push_back(std::move(field));
      *saw_any = true;
      return true;
    }
    field += static_cast<char>(c);
  }
  if (started) {
    fields->push_back(std::move(field));
    *saw_any = true;
    line_number_++;
  }
  return *saw_any;
}

Status CsvReader::Initialize() {
  stream_.open(path_);
  if (!stream_.is_open()) {
    return Status::IOError("cannot open CSV file '" + path_ + "'");
  }
  std::vector<std::string> fields;
  bool saw;
  if (!ReadRecord(&fields, &saw)) {
    return Status::InvalidArgument("CSV file '" + path_ + "' is empty");
  }
  std::vector<std::string> names;
  std::vector<TypeId> types;
  if (options_.header) {
    names = fields;
    types.assign(fields.size(), TypeId::kInvalid);
  } else {
    for (size_t i = 0; i < fields.size(); i++) {
      names.push_back("column" + std::to_string(i));
    }
    types.assign(fields.size(), TypeId::kInvalid);
    for (size_t i = 0; i < fields.size(); i++) {
      types[i] = WidenType(types[i], fields[i]);
    }
  }
  // Sniff types over the first 100 data rows, then rewind.
  std::streampos data_start = stream_.tellg();
  idx_t sniff_lines = line_number_;
  for (int row = 0; row < 100; row++) {
    if (!ReadRecord(&fields, &saw)) break;
    for (size_t i = 0; i < fields.size() && i < types.size(); i++) {
      if (fields[i] == options_.null_string && fields[i].empty()) continue;
      types[i] = WidenType(types[i], fields[i]);
    }
  }
  stream_.clear();
  stream_.seekg(options_.header ? data_start : std::streampos(0));
  line_number_ = options_.header ? sniff_lines : 0;
  for (size_t i = 0; i < names.size(); i++) {
    TypeId t = types[i] == TypeId::kInvalid ? TypeId::kVarchar : types[i];
    columns_.emplace_back(names[i], t);
  }
  return Status::OK();
}

Result<idx_t> CsvReader::ReadChunk(DataChunk* chunk) {
  chunk->Reset();
  std::vector<std::string> fields;
  bool saw;
  idx_t rows = 0;
  while (rows < kVectorSize && ReadRecord(&fields, &saw)) {
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != columns_.size()) {
      return Status::InvalidArgument(StringUtil::Format(
          "CSV '%s' line %llu: expected %zu fields, found %zu",
          path_.c_str(), static_cast<unsigned long long>(line_number_),
          columns_.size(), fields.size()));
    }
    for (size_t c = 0; c < fields.size(); c++) {
      const std::string& f = fields[c];
      if (f == options_.null_string && f.empty()) {
        chunk->column(c).validity().SetInvalid(rows);
        continue;
      }
      MALLARD_ASSIGN_OR_RETURN(
          Value v, Value::Varchar(f).CastTo(columns_[c].type));
      chunk->SetValue(c, rows, v);
    }
    rows++;
  }
  chunk->SetCardinality(rows);
  return rows;
}

Status CsvWriter::Write(const std::string& path,
                        const std::vector<std::string>& column_names,
                        const std::vector<DataChunk*>& chunks,
                        CsvOptions options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  auto quote = [&](const std::string& s) {
    if (s.find(options.delimiter) == std::string::npos &&
        s.find('"') == std::string::npos &&
        s.find('\n') == std::string::npos) {
      return s;
    }
    std::string quoted = "\"";
    for (char c : s) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  if (options.header) {
    for (size_t i = 0; i < column_names.size(); i++) {
      if (i > 0) out << options.delimiter;
      out << quote(column_names[i]);
    }
    out << "\n";
  }
  for (const DataChunk* chunk : chunks) {
    for (idx_t r = 0; r < chunk->size(); r++) {
      for (idx_t c = 0; c < chunk->ColumnCount(); c++) {
        if (c > 0) out << options.delimiter;
        Value v = chunk->GetValue(c, r);
        if (!v.is_null()) out << quote(v.ToString());
      }
      out << "\n";
    }
  }
  out.close();
  return Status::OK();
}

}  // namespace mallard
