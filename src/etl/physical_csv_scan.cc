#include "mallard/etl/physical_csv_scan.h"

namespace mallard {

Status PhysicalCsvScan::GetChunk(ExecutionContext* context, DataChunk* out) {
  MALLARD_RETURN_NOT_OK(context->CheckInterrupt());
  if (!initialized_) {
    MALLARD_ASSIGN_OR_RETURN(reader_, CsvReader::Open(path_, options_));
    if (reader_->ColumnTypes() != file_types_) {
      return Status::InvalidArgument(
          "CSV schema of '" + path_ +
          "' changed between planning and execution");
    }
    file_chunk_.Initialize(file_types_);
    initialized_ = true;
  }
  out->Reset();
  MALLARD_ASSIGN_OR_RETURN(idx_t rows, reader_->ReadChunk(&file_chunk_));
  if (rows == 0) return Status::OK();
  for (idx_t c = 0; c < column_ids_.size(); c++) {
    out->column(c).Reference(file_chunk_.column(column_ids_[c]));
  }
  out->SetCardinality(rows);
  return Status::OK();
}

}  // namespace mallard
