#include "mallard/execution/chunk_collection.h"

#include "mallard/governor/resource_governor.h"

namespace mallard {

namespace {
constexpr size_t kSegmentTarget = 256 * 1024;
}

ChunkCollection::ChunkCollection(std::vector<TypeId> types,
                                 ResourceGovernor* governor)
    : types_(std::move(types)), governor_(governor) {}

Status ChunkCollection::Append(const DataChunk& chunk) {
  if (chunk.size() == 0) return Status::OK();
  SerializeChunk(chunk, &buffer_);
  count_ += chunk.size();
  if (buffer_.size() >= kSegmentTarget) {
    SealSegment();
  }
  return Status::OK();
}

void ChunkCollection::SealSegment() {
  if (buffer_.size() == 0) return;
  Segment segment;
  segment.raw_size = buffer_.size();
  raw_bytes_ += buffer_.size();
  CompressionLevel level =
      governor_ ? governor_->ChooseCompressionLevel() : CompressionLevel::kNone;
  const Codec* codec = CodecForLevel(level);
  if (codec) {
    codec->Compress(buffer_.data().data(), buffer_.size(), &segment.data);
    // Compression can backfire on incompressible data; keep raw then.
    if (segment.data.size() >= buffer_.size()) {
      segment.data = buffer_.data();
      level = CompressionLevel::kNone;
    }
  } else {
    segment.data = buffer_.data();
  }
  segment.level = level;
  segments_.push_back(std::move(segment));
  buffer_.Clear();
}

void ChunkCollection::Finalize() { SealSegment(); }

Status ChunkCollection::Scan(ScanState* state, DataChunk* out) const {
  out->Reset();
  while (true) {
    if (!state->loaded) {
      if (state->segment_index >= segments_.size()) {
        return Status::OK();  // cardinality 0 = done
      }
      const Segment& segment = segments_[state->segment_index];
      const Codec* codec = CodecForLevel(segment.level);
      if (codec) {
        MALLARD_RETURN_NOT_OK(codec->Decompress(
            segment.data.data(), segment.data.size(), &state->current));
      } else {
        state->current = segment.data;
      }
      state->offset = 0;
      state->loaded = true;
    }
    if (state->offset >= state->current.size()) {
      state->loaded = false;
      state->segment_index++;
      continue;
    }
    BinaryReader reader(state->current.data() + state->offset,
                        state->current.size() - state->offset);
    MALLARD_RETURN_NOT_OK(DeserializeChunk(&reader, out));
    state->offset += reader.position();
    return Status::OK();
  }
}

uint64_t ChunkCollection::MemoryBytes() const {
  uint64_t total = buffer_.size();
  for (const auto& s : segments_) total += s.data.size();
  return total;
}

}  // namespace mallard
