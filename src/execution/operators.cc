#include "mallard/execution/operators.h"

#include <algorithm>

#include "mallard/expression/expression_executor.h"
#include "mallard/parallel/morsel.h"

namespace mallard {

// ---------------------------------------------------------------------------
// PhysicalTableScan
// ---------------------------------------------------------------------------

PhysicalTableScan::PhysicalTableScan(
    DataTable* table, std::vector<idx_t> column_ids,
    std::vector<TableFilter> filters, std::vector<TypeId> types,
    std::vector<LateBoundTableFilter> late_filters)
    : PhysicalOperator(std::move(types)),
      table_(table),
      column_ids_(std::move(column_ids)),
      filters_(std::move(filters)),
      late_filters_(std::move(late_filters)) {}

std::vector<TableFilter> PhysicalTableScan::EffectiveFilters() const {
  std::vector<TableFilter> filters = filters_;
  // Materialize parameterized zone-map filters from the values bound
  // at this execution. Unbound/NULL/uncastable values just skip the
  // pruning; the residual filter above the scan keeps results exact.
  for (const auto& late : late_filters_) {
    if (late.parameter_index >= late.parameters->values.size() ||
        !late.parameters->is_set[late.parameter_index]) {
      continue;
    }
    const Value& bound = late.parameters->values[late.parameter_index];
    if (bound.is_null()) continue;
    auto cast = bound.CastTo(late.column_type);
    if (!cast.ok()) continue;
    filters.push_back(
        TableFilter{late.column_index, late.op, std::move(*cast)});
  }
  return filters;
}

Status PhysicalTableScan::GetChunk(ExecutionContext* context, DataChunk* out) {
  MALLARD_RETURN_NOT_OK(context->CheckInterrupt());
  if (!initialized_) {
    table_->InitializeScan(&state_, column_ids_, EffectiveFilters());
    state_.salvage = context->salvage_mode;
    initialized_ = true;
  }
  out->Reset();
  if (!table_->Scan(*context->txn, &state_, out) && !state_.error.ok()) {
    // A quarantined row group outside salvage mode: surface the
    // corruption instead of silently truncating the result.
    return std::move(state_.error);
  }
  return Status::OK();
}

std::string PhysicalTableScan::name() const {
  return "SEQ_SCAN(" + table_->name() + ")";
}

std::unique_ptr<PhysicalOperator> PhysicalTableScan::MorselClone(
    const ParallelCloneContext& ctx) const {
  return std::make_unique<PhysicalMorselScan>(ctx.source, ctx.worker, table_,
                                              column_ids_, EffectiveFilters(),
                                              types_);
}

// ---------------------------------------------------------------------------
// PhysicalFilter
// ---------------------------------------------------------------------------

PhysicalFilter::PhysicalFilter(ExprPtr predicate,
                               std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(child->types()), predicate_(std::move(predicate)) {
  child_chunk_.Initialize(child->types());
  AddChild(std::move(child));
}

Status PhysicalFilter::GetChunk(ExecutionContext* context, DataChunk* out) {
  out->Reset();
  while (true) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &child_chunk_));
    if (child_chunk_.size() == 0) return Status::OK();
    uint32_t sel[kVectorSize];
    MALLARD_ASSIGN_OR_RETURN(
        idx_t m, ExpressionExecutor::Select(*predicate_, child_chunk_, sel));
    if (m == 0) continue;
    if (m == child_chunk_.size()) {
      // All rows pass: alias child vectors, zero copies.
      for (idx_t c = 0; c < out->ColumnCount(); c++) {
        out->column(c).Reference(child_chunk_.column(c));
      }
    } else {
      for (idx_t c = 0; c < out->ColumnCount(); c++) {
        out->column(c).CopySelection(child_chunk_.column(c), sel, m);
      }
    }
    out->SetCardinality(m);
    return Status::OK();
  }
}

std::string PhysicalFilter::name() const {
  return "FILTER(" + predicate_->ToString() + ")";
}

std::unique_ptr<PhysicalOperator> PhysicalFilter::MorselClone(
    const ParallelCloneContext& ctx) const {
  auto child_clone = children_[0]->MorselClone(ctx);
  if (!child_clone) return nullptr;
  return std::make_unique<PhysicalFilter>(predicate_->Copy(),
                                          std::move(child_clone));
}

// ---------------------------------------------------------------------------
// PhysicalProjection
// ---------------------------------------------------------------------------

PhysicalProjection::PhysicalProjection(std::vector<ExprPtr> expressions,
                                       std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator([&] {
        std::vector<TypeId> types;
        for (const auto& e : expressions) types.push_back(e->return_type());
        return types;
      }()),
      expressions_(std::move(expressions)) {
  child_chunk_.Initialize(child->types());
  AddChild(std::move(child));
}

Status PhysicalProjection::GetChunk(ExecutionContext* context,
                                    DataChunk* out) {
  out->Reset();
  MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &child_chunk_));
  if (child_chunk_.size() == 0) return Status::OK();
  for (idx_t c = 0; c < expressions_.size(); c++) {
    MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
        *expressions_[c], child_chunk_, &out->column(c)));
  }
  out->SetCardinality(child_chunk_.size());
  return Status::OK();
}

std::string PhysicalProjection::name() const {
  std::string result = "PROJECTION(";
  for (size_t i = 0; i < expressions_.size(); i++) {
    if (i > 0) result += ", ";
    result += expressions_[i]->ToString();
  }
  return result + ")";
}

std::unique_ptr<PhysicalOperator> PhysicalProjection::MorselClone(
    const ParallelCloneContext& ctx) const {
  auto child_clone = children_[0]->MorselClone(ctx);
  if (!child_clone) return nullptr;
  std::vector<ExprPtr> expressions;
  for (const auto& e : expressions_) expressions.push_back(e->Copy());
  return std::make_unique<PhysicalProjection>(std::move(expressions),
                                              std::move(child_clone));
}

// ---------------------------------------------------------------------------
// PhysicalLimit
// ---------------------------------------------------------------------------

PhysicalLimit::PhysicalLimit(idx_t limit, idx_t offset,
                             std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(child->types()), limit_(limit), offset_(offset) {
  child_chunk_.Initialize(child->types());
  AddChild(std::move(child));
}

Status PhysicalLimit::GetChunk(ExecutionContext* context, DataChunk* out) {
  out->Reset();
  while (produced_ < limit_) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &child_chunk_));
    if (child_chunk_.size() == 0) return Status::OK();
    idx_t start = 0;
    idx_t available = child_chunk_.size();
    if (skipped_ < offset_) {
      idx_t skip = std::min(offset_ - skipped_, available);
      skipped_ += skip;
      start = skip;
      available -= skip;
      if (available == 0) continue;
    }
    idx_t take = std::min(available, limit_ - produced_);
    for (idx_t c = 0; c < out->ColumnCount(); c++) {
      out->column(c).CopyFrom(child_chunk_.column(c), take, start, 0);
    }
    out->SetCardinality(take);
    produced_ += take;
    return Status::OK();
  }
  return Status::OK();
}

std::string PhysicalLimit::name() const {
  return "LIMIT(" + std::to_string(limit_) +
         (offset_ ? " OFFSET " + std::to_string(offset_) : "") + ")";
}

// ---------------------------------------------------------------------------
// PhysicalValues
// ---------------------------------------------------------------------------

PhysicalValues::PhysicalValues(std::vector<std::vector<Value>> rows,
                               std::vector<TypeId> types)
    : PhysicalOperator(std::move(types)), rows_(std::move(rows)) {}

Status PhysicalValues::GetChunk(ExecutionContext*, DataChunk* out) {
  out->Reset();
  idx_t produced = 0;
  while (position_ < rows_.size() && produced < kVectorSize) {
    const auto& row = rows_[position_++];
    for (idx_t c = 0; c < types_.size(); c++) {
      out->SetValue(c, produced, row[c]);
    }
    produced++;
  }
  out->SetCardinality(produced);
  return Status::OK();
}

std::string PhysicalValues::name() const {
  return "VALUES(" + std::to_string(rows_.size()) + " rows)";
}

// ---------------------------------------------------------------------------
// PhysicalExpressionScan
// ---------------------------------------------------------------------------

PhysicalExpressionScan::PhysicalExpressionScan(
    std::vector<std::vector<ExprPtr>> rows, std::vector<TypeId> types)
    : PhysicalOperator(std::move(types)), rows_(std::move(rows)) {}

Status PhysicalExpressionScan::GetChunk(ExecutionContext*, DataChunk* out) {
  out->Reset();
  idx_t produced = 0;
  while (position_ < rows_.size() && produced < kVectorSize) {
    const auto& row = rows_[position_++];
    for (idx_t c = 0; c < types_.size(); c++) {
      MALLARD_ASSIGN_OR_RETURN(
          Value v, ExpressionExecutor::ExecuteScalar(*row[c], {}));
      if (!v.is_null() && v.type() != types_[c]) {
        MALLARD_ASSIGN_OR_RETURN(v, v.CastTo(types_[c]));
      }
      out->SetValue(c, produced, v);
    }
    produced++;
  }
  out->SetCardinality(produced);
  return Status::OK();
}

std::string PhysicalExpressionScan::name() const {
  return "EXPRESSION_SCAN(" + std::to_string(rows_.size()) + " rows)";
}

}  // namespace mallard
