#include "mallard/execution/external_sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "mallard/governor/resource_governor.h"

namespace mallard {

namespace {
constexpr uint64_t kSegmentRawTarget = 1 << 20;  // 1MB
}

ExternalSort::ExternalSort(std::vector<TypeId> types,
                           std::vector<SortSpec> specs, BufferManager* buffers,
                           ResourceGovernor* governor)
    : types_(types),
      specs_(std::move(specs)),
      buffers_(buffers),
      governor_(governor),
      codec_(types) {}

uint64_t ExternalSort::RunBudget() const {
  uint64_t budget = governor_ ? governor_->EffectiveMemoryBudget()
                              : (256ull << 20);
  // A run may use a quarter of the budget before being cut.
  return std::max<uint64_t>(budget / 4, 1 << 20);
}

Status ExternalSort::Sink(const DataChunk& chunk) {
  std::string key;
  for (idx_t r = 0; r < chunk.size(); r++) {
    EncodeSortKey(chunk, r, specs_, &key);
    keys_.push_back(key);
    row_offsets_.push_back(rows_.size());
    codec_.EncodeRow(chunk, r, &rows_);
    accumulated_ += key.size() + 16;
  }
  accumulated_ = rows_.size() + keys_.size() * 32;
  stats_.rows += chunk.size();
  if (accumulated_ > RunBudget()) {
    MALLARD_RETURN_NOT_OK(FinishRun());
  }
  return Status::OK();
}

Status ExternalSort::FinishRun() {
  if (keys_.empty()) return Status::OK();
  // Argsort by encoded key (memcmp order == tuple order).
  std::vector<uint32_t> perm(keys_.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return keys_[a] < keys_[b];
  });
  CompressionLevel level = governor_ ? governor_->ChooseCompressionLevel()
                                     : CompressionLevel::kNone;
  const Codec* codec = CodecForLevel(level);

  Run run;
  std::vector<uint8_t> raw;
  raw.reserve(kSegmentRawTarget + 4096);
  auto seal_segment = [&]() -> Status {
    if (raw.empty()) return Status::OK();
    std::vector<uint8_t> compressed;
    const std::vector<uint8_t>* payload = &raw;
    CompressionLevel used = level;
    if (codec) {
      codec->Compress(raw.data(), raw.size(), &compressed);
      if (compressed.size() < raw.size()) {
        payload = &compressed;
      } else {
        used = CompressionLevel::kNone;
      }
    }
    Segment segment;
    segment.raw_size = raw.size();
    segment.stored_size = payload->size();
    segment.level = used;
    MALLARD_ASSIGN_OR_RETURN(BufferHandle handle,
                             buffers_->Allocate(payload->size()));
    std::memcpy(handle.data(), payload->data(), payload->size());
    segment.buffer = handle.buffer();
    handle.Release();  // unpin: evictable/spillable from here on
    stats_.raw_bytes += segment.raw_size;
    stats_.stored_bytes += segment.stored_size;
    run.segments.push_back(std::move(segment));
    raw.clear();
    return Status::OK();
  };

  for (uint32_t idx : perm) {
    const std::string& key = keys_[idx];
    size_t row_start = row_offsets_[idx];
    size_t row_end =
        idx + 1 < row_offsets_.size() ? row_offsets_[idx + 1] : rows_.size();
    // Row offsets are per insertion order; recompute end via decoding
    // boundaries recorded at sink time.
    uint32_t key_len = static_cast<uint32_t>(key.size());
    size_t pos = raw.size();
    raw.resize(pos + 4 + key.size() + (row_end - row_start));
    std::memcpy(raw.data() + pos, &key_len, 4);
    std::memcpy(raw.data() + pos + 4, key.data(), key.size());
    std::memcpy(raw.data() + pos + 4 + key.size(), rows_.data() + row_start,
                row_end - row_start);
    if (raw.size() >= kSegmentRawTarget) {
      MALLARD_RETURN_NOT_OK(seal_segment());
    }
  }
  MALLARD_RETURN_NOT_OK(seal_segment());
  runs_.push_back(std::move(run));
  stats_.runs++;
  keys_.clear();
  rows_.clear();
  row_offsets_.clear();
  accumulated_ = 0;
  return Status::OK();
}

Status ExternalSort::Finalize() {
  MALLARD_RETURN_NOT_OK(FinishRun());
  cursors_.clear();
  for (const Run& run : runs_) {
    cursors_.push_back(
        std::make_unique<RunCursor>(&run, buffers_, &codec_));
  }
  for (idx_t i = 0; i < cursors_.size(); i++) {
    MALLARD_ASSIGN_OR_RETURN(bool has, cursors_[i]->Advance());
    if (has) heap_.push(HeapEntry{cursors_[i]->key(), i});
  }
  finalized_ = true;
  return Status::OK();
}

Status ExternalSort::GetChunk(DataChunk* out) {
  out->Reset();
  idx_t produced = 0;
  while (produced < kVectorSize && !heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    cursors_[top.cursor]->DecodeCurrentRow(out, produced);
    produced++;
    MALLARD_ASSIGN_OR_RETURN(bool has, cursors_[top.cursor]->Advance());
    if (has) heap_.push(HeapEntry{cursors_[top.cursor]->key(), top.cursor});
  }
  out->SetCardinality(produced);
  return Status::OK();
}

Status ExternalSort::RunCursor::LoadSegment() {
  const Segment& segment = run_->segments[segment_index_];
  MALLARD_ASSIGN_OR_RETURN(BufferHandle handle,
                           buffers_->Pin(segment.buffer));
  const Codec* codec = CodecForLevel(segment.level);
  if (codec) {
    MALLARD_RETURN_NOT_OK(
        codec->Decompress(handle.data(), segment.stored_size, &current_));
  } else {
    current_.assign(handle.data(), handle.data() + segment.stored_size);
  }
  offset_ = 0;
  loaded_ = true;
  return Status::OK();
}

Result<bool> ExternalSort::RunCursor::Advance() {
  while (true) {
    if (!loaded_) {
      if (segment_index_ >= run_->segments.size()) return false;
      MALLARD_RETURN_NOT_OK(LoadSegment());
    }
    if (offset_ >= current_.size()) {
      loaded_ = false;
      segment_index_++;
      continue;
    }
    uint32_t key_len;
    std::memcpy(&key_len, current_.data() + offset_, 4);
    key_ = std::string_view(
        reinterpret_cast<const char*>(current_.data() + offset_ + 4), key_len);
    row_ptr_ = current_.data() + offset_ + 4 + key_len;
    // Row length is discovered while decoding; advance lazily: decode a
    // throwaway header scan by measuring with a scratch decode is
    // wasteful, so the offset is advanced in DecodeCurrentRow... but
    // Advance may be called without decoding (never happens in merge).
    // We measure here with a lightweight skip.
    size_t row_size = 0;
    {
      const uint8_t* p = row_ptr_;
      for (TypeId type : codec_->types()) {
        bool valid = p[row_size++] != 0;
        if (!valid) continue;
        if (type == TypeId::kVarchar) {
          uint32_t len;
          std::memcpy(&len, p + row_size, 4);
          row_size += 4 + len;
        } else {
          row_size += TypeSize(type);
        }
      }
    }
    offset_ += 4 + key_len + row_size;
    return true;
  }
}

void ExternalSort::RunCursor::DecodeCurrentRow(DataChunk* out,
                                               idx_t out_row) const {
  codec_->DecodeRow(row_ptr_, out, out_row);
}

}  // namespace mallard
