#include "mallard/execution/physical_join.h"

#include <atomic>
#include <chrono>
#include <cstring>

#include "mallard/expression/expression_executor.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/parallel/morsel.h"
#include "mallard/parallel/task_scheduler.h"
#include "mallard/vector/vector_hash.h"

namespace mallard {

namespace {

std::vector<TypeId> JoinOutputTypes(JoinType join_type,
                                    const std::vector<TypeId>& left,
                                    const std::vector<TypeId>& right) {
  std::vector<TypeId> types = left;
  if (join_type == JoinType::kInner || join_type == JoinType::kLeft) {
    types.insert(types.end(), right.begin(), right.end());
  }
  return types;
}

std::vector<TypeId> KeyTypes(const std::vector<JoinCondition>& conditions,
                             bool left_side) {
  std::vector<TypeId> types;
  for (const auto& c : conditions) {
    types.push_back(left_side ? c.left->return_type()
                              : c.right->return_type());
  }
  return types;
}

std::vector<SortSpec> KeySpecs(idx_t count) {
  std::vector<SortSpec> specs;
  for (idx_t i = 0; i < count; i++) specs.push_back(SortSpec{i, true, true});
  return specs;
}

/// Internal probe source for one grace job: streams the stashed probe
/// rows ([hash | RowCodec-encoded row]) of a partition back out as
/// chunks, so the regular ProbeChunk body replays them unchanged.
class GraceStashScan final : public PhysicalOperator {
 public:
  GraceStashScan(std::vector<TypeId> types, SpillRowStore* store,
                 const RowCodec* codec)
      : PhysicalOperator(std::move(types)), store_(store), codec_(codec) {}

  Status GetChunk(ExecutionContext*, DataChunk* out) override {
    out->Reset();
    idx_t n = 0;
    while (n < kVectorSize) {
      const uint8_t* row;
      uint32_t len;
      MALLARD_RETURN_NOT_OK(store_->Next(&cursor_, &row, &len));
      if (!row) break;
      codec_->DecodeRow(row + 8, out, n, 0);
      n++;
    }
    out->SetCardinality(n);
    return Status::OK();
  }
  std::string name() const override { return "GRACE_STASH_SCAN"; }

 private:
  SpillRowStore* store_;
  const RowCodec* codec_;
  SpillRowStore::Cursor cursor_;
};

}  // namespace

// ---------------------------------------------------------------------------
// PhysicalHashJoin
// ---------------------------------------------------------------------------

PhysicalHashJoin::PhysicalHashJoin(JoinType join_type,
                                   std::vector<JoinCondition> conditions,
                                   std::unique_ptr<PhysicalOperator> left,
                                   std::unique_ptr<PhysicalOperator> right)
    : PhysicalOperator(
          JoinOutputTypes(join_type, left->types(), right->types())),
      join_type_(join_type),
      conditions_(std::move(conditions)),
      right_types_(right->types()) {
  AddChild(std::move(left));
  AddChild(std::move(right));
  InitCursor(&probe_);
}

void PhysicalHashJoin::InitCursor(ProbeCursor* cursor) const {
  cursor->chunk.Initialize(children_[0]->types());
  cursor->keys.Initialize(KeyTypes(conditions_, /*left_side=*/true));
  cursor->exprs.clear();
  for (const auto& c : conditions_) cursor->exprs.push_back(c.left->Copy());
  cursor->hashes.resize(kVectorSize);
  cursor->heads.resize(kVectorSize);
  cursor->sel.resize(kVectorSize);
  cursor->refs.resize(kVectorSize);
}

Status PhysicalHashJoin::EvaluateKeys(const std::vector<ExprPtr>& exprs,
                                      const DataChunk& input,
                                      DataChunk* keys) {
  keys->Reset();
  for (idx_t i = 0; i < exprs.size(); i++) {
    MALLARD_RETURN_NOT_OK(
        ExpressionExecutor::Execute(*exprs[i], input, &keys->column(i)));
  }
  keys->SetCardinality(input.size());
  return Status::OK();
}

Status PhysicalHashJoin::SinkBuildSide(ExecutionContext* context,
                                       PhysicalOperator* source,
                                       const std::vector<ExprPtr>& key_exprs,
                                       JoinHashTable* table) {
  DataChunk build_chunk;
  build_chunk.Initialize(right_types_);
  DataChunk key_chunk;
  key_chunk.Initialize(KeyTypes(conditions_, /*left_side=*/false));
  while (true) {
    MALLARD_RETURN_NOT_OK(source->GetChunk(context, &build_chunk));
    if (build_chunk.size() == 0) break;
    MALLARD_RETURN_NOT_OK(EvaluateKeys(key_exprs, build_chunk, &key_chunk));
    MALLARD_RETURN_NOT_OK(
        table->Append(context, key_chunk, build_chunk, build_chunk.size()));
  }
  return Status::OK();
}

Status PhysicalHashJoin::ParallelBuild(ExecutionContext* context,
                                       bool* done) {
  std::vector<TypeId> key_types = KeyTypes(conditions_, /*left_side=*/false);
  // Per-worker expression copies are made up front on the calling
  // thread; workers then never touch the shared condition trees.
  std::vector<std::vector<ExprPtr>> exprs;
  std::vector<std::unique_ptr<JoinHashTable>> partitions;
  idx_t worker_count = 1;
  MALLARD_RETURN_NOT_OK(parallel::RunMorselPipeline(
      context, child(1), done,
      [&](idx_t workers) {
        worker_count = workers;
        exprs.resize(workers);
        partitions.resize(workers);
        for (auto& worker_exprs : exprs) {
          for (auto& c : conditions_) worker_exprs.push_back(c.right->Copy());
        }
      },
      [&](int w, PhysicalOperator* scan) -> Status {
        auto partition =
            std::make_unique<JoinHashTable>(key_types, right_types_);
        if (context->governor) {
          // Each worker keeps its thread-local partitions under an equal
          // share of the join's half of the budget and spills the rest
          // independently — no cross-worker coordination needed.
          partition->EnableSpilling(context->governor, 2 * worker_count,
                                    /*radix_shift=*/0);
        }
        MALLARD_RETURN_NOT_OK(
            SinkBuildSide(context, scan, exprs[w], partition.get()));
        partitions[w] = std::move(partition);
        return Status::OK();
      }));
  if (!*done) return Status::OK();
  for (auto& partition : partitions) {
    // Clamped-away workers leave a null slot; their morsels were
    // claimed by the workers that did run.
    if (partition) table_->MergePartition(std::move(*partition));
  }
  return Status::OK();
}

Status PhysicalHashJoin::Build(ExecutionContext* context) {
  auto build_start = std::chrono::steady_clock::now();
  table_ = std::make_unique<JoinHashTable>(
      KeyTypes(conditions_, /*left_side=*/false), right_types_);
  if (context->governor) {
    // The build side gets half the governor's budget; the other half
    // covers the probe stashes and operator scratch. Exceeding it turns
    // Finalize into grace mode instead of failing the query.
    table_->EnableSpilling(context->governor, /*divisor=*/2,
                           /*radix_shift=*/0);
  }
  bool built_parallel = false;
  MALLARD_RETURN_NOT_OK(ParallelBuild(context, &built_parallel));
  if (!built_parallel) {
    std::vector<ExprPtr> right_exprs;
    for (auto& c : conditions_) right_exprs.push_back(c.right->Copy());
    MALLARD_RETURN_NOT_OK(
        SinkBuildSide(context, child(1), right_exprs, table_.get()));
  }
  MALLARD_RETURN_NOT_OK(table_->Finalize());
  probe_table_ = table_.get();
  built_ = true;
  build_ms_ += std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - build_start)
                   .count();
  return Status::OK();
}

idx_t PhysicalHashJoin::GatherMatches(ProbeCursor* cursor, idx_t capacity,
                                      uint32_t* sel, uint64_t* refs) {
  constexpr uint64_t kNullRef = JoinHashTable::kNullRef;
  ProbeCursor& c = *cursor;
  idx_t n = 0;
  const bool walk_chains =
      join_type_ == JoinType::kInner || join_type_ == JoinType::kLeft;
  while (n < capacity && c.position < c.chunk.size()) {
    idx_t r = c.position;
    if (walk_chains) {
      if (!c.chain_active) {
        c.chain_ref =
            probe_table_->FirstMatch(c.heads[r], c.keys, r, c.hashes[r]);
        c.chain_active = true;
        c.row_matched = false;
      }
      while (c.chain_ref != kNullRef && n < capacity) {
        sel[n] = static_cast<uint32_t>(r);
        refs[n] = c.chain_ref;
        n++;
        c.row_matched = true;
        c.chain_ref = probe_table_->NextMatch(c.chain_ref, c.keys, r, c.hashes[r]);
      }
      if (c.chain_ref != kNullRef) break;  // capacity filled mid-chain
      if (join_type_ == JoinType::kLeft && !c.row_matched) {
        if (n >= capacity) break;  // emit the NULL-padded row next call
        sel[n] = static_cast<uint32_t>(r);
        refs[n] = kNullRef;
        n++;
      }
      c.position++;
      c.chain_active = false;
    } else {
      // Semi/anti: existence check only, one output row at most.
      uint64_t match = probe_table_->FirstMatch(c.heads[r], c.keys, r, c.hashes[r]);
      if ((join_type_ == JoinType::kSemi) == (match != kNullRef)) {
        sel[n] = static_cast<uint32_t>(r);
        refs[n] = kNullRef;
        n++;
      }
      c.position++;
    }
  }
  return n;
}

Status PhysicalHashJoin::ProbeChunk(ExecutionContext* context,
                                    PhysicalOperator* source,
                                    ProbeCursor* cursor, DataChunk* out) {
  ProbeCursor& c = *cursor;
  out->Reset();
  idx_t produced = 0;
  idx_t left_width = c.chunk.ColumnCount();
  bool emit_right =
      join_type_ == JoinType::kInner || join_type_ == JoinType::kLeft;

  while (produced < kVectorSize) {
    if (c.position >= c.chunk.size()) {
      if (c.exhausted) break;
      MALLARD_RETURN_NOT_OK(source->GetChunk(context, &c.chunk));
      c.position = 0;
      c.chain_active = false;
      if (c.chunk.size() == 0) {
        c.exhausted = true;
        break;
      }
      MALLARD_RETURN_NOT_OK(EvaluateKeys(c.exprs, c.chunk, &c.keys));
      probe_table_->ProbeHeads(c.keys, c.chunk.size(), c.hashes.data(),
                               c.heads.data());
      continue;
    }
    idx_t n = GatherMatches(cursor, kVectorSize - produced, c.sel.data(),
                            c.refs.data());
    if (n == 0) continue;
    // Probe side: one selection-vector copy per column; build side:
    // decode each matched row straight into the output chunk.
    for (idx_t col = 0; col < left_width; col++) {
      out->column(col).CopySelection(c.chunk.column(col), c.sel.data(), n,
                                     produced);
    }
    if (emit_right) {
      for (idx_t i = 0; i < n; i++) {
        if (c.refs[i] != JoinHashTable::kNullRef) {
          probe_table_->DecodePayload(c.refs[i], out, produced + i, left_width);
        } else {
          for (idx_t col = left_width; col < out->ColumnCount(); col++) {
            out->column(col).validity().SetInvalid(produced + i);
          }
        }
      }
    }
    produced += n;
  }
  out->SetCardinality(produced);
  return Status::OK();
}

Status PhysicalHashJoin::PlanParallelProbe(ExecutionContext* context) {
  // Per-worker cursors (private expression copies, chunks, scratch) are
  // sized up front on the calling thread; each worker then only touches
  // its own cursor and its own result collection. The hash table itself
  // is finalized and immutable: FirstMatch/NextMatch/DecodePayload are
  // const and scratch-free, so concurrent probing is read-only-safe
  // (docs/CONCURRENCY.md).
  parallel_probe_ = probe_pipeline_.Plan(context, child(0));
  if (!parallel_probe_) return Status::OK();
  probe_cursors_.clear();
  for (int w = 0; w < probe_pipeline_.threads(); w++) {
    probe_cursors_.push_back(std::make_unique<ProbeCursor>());
    InitCursor(probe_cursors_.back().get());
  }
  return Status::OK();
}

Status PhysicalHashJoin::RunProbePass(ExecutionContext* context) {
  // Bound what one pass may materialize: a share of the governor's
  // current memory budget per cursor (floored so tiny budgets still
  // make progress one chunk at a time). The result buffers are the only
  // probe-side state that grows with the *output*, so this cap is what
  // keeps a high-fanout join from buffering an unbounded result — the
  // caller drains the buffers and runs another pass instead.
  const uint64_t pass_budget = std::max<uint64_t>(
      1ull << 22, context->governor->EffectiveMemoryBudget() /
                      (4 * static_cast<uint64_t>(probe_pipeline_.threads())));
  probe_results_.clear();
  probe_results_.resize(probe_cursors_.size());
  // Unfinished cursors are claimed from a shared queue rather than
  // bound to the runner's own index: a governed pass the scheduler
  // clamps to fewer runners than cursors (reactive budget collapse)
  // still drives every pending cursor — otherwise a cursor paused on
  // the pass budget could starve forever and GetChunk would spin.
  std::vector<int> pending;
  for (int i = 0; i < static_cast<int>(probe_cursors_.size()); i++) {
    if (!probe_cursors_[i]->exhausted) pending.push_back(i);
  }
  std::atomic<size_t> next{0};
  return probe_pipeline_.RunPass(
      context, [&](int, PhysicalOperator*) -> Status {
        while (true) {
          size_t claim = next.fetch_add(1);
          if (claim >= pending.size()) return Status::OK();
          int cw = pending[claim];
          ProbeCursor& cursor = *probe_cursors_[cw];
          PhysicalOperator* scan = probe_pipeline_.clone(cw);
          auto result =
              std::make_unique<ChunkCollection>(types(), context->governor);
          DataChunk chunk;
          chunk.Initialize(types());
          while (true) {
            MALLARD_RETURN_NOT_OK(
                ProbeChunk(context, scan, &cursor, &chunk));
            if (chunk.size() == 0) break;  // cursor.exhausted is now set
            MALLARD_RETURN_NOT_OK(result->Append(chunk));
            if (result->MemoryBytes() >= pass_budget) break;  // next pass
          }
          result->Finalize();
          probe_results_[cw] = std::move(result);
        }
      });
}

bool PhysicalHashJoin::AllProbeWorkersDone() const {
  for (const auto& cursor : probe_cursors_) {
    if (!cursor->exhausted) return false;
  }
  return true;
}

Status PhysicalHashJoin::GetChunk(ExecutionContext* context, DataChunk* out) {
  if (!built_) {
    MALLARD_RETURN_NOT_OK(Build(context));
  }
  auto probe_start = std::chrono::steady_clock::now();
  auto track_probe = [&]() {
    probe_ms_ += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - probe_start)
                     .count();
  };
  if (table_->GraceMode()) {
    Status status = GraceProbe(context, out);
    track_probe();
    return status;
  }
  if (!probe_planned_) {
    MALLARD_RETURN_NOT_OK(PlanParallelProbe(context));
    probe_planned_ = true;
  }
  if (parallel_probe_) {
    out->Reset();
    while (true) {
      // Drain this pass's per-worker buffers in worker-index order, so
      // the output stream does not depend on worker completion timing.
      while (drain_index_ < probe_results_.size()) {
        if (!probe_results_[drain_index_]) {
          drain_index_++;
          continue;
        }
        MALLARD_RETURN_NOT_OK(
            probe_results_[drain_index_]->Scan(&drain_scan_, out));
        if (out->size() > 0) {
          track_probe();
          return Status::OK();
        }
        drain_index_++;
        drain_scan_ = ChunkCollection::ScanState{};
      }
      if (AllProbeWorkersDone()) break;
      MALLARD_RETURN_NOT_OK(RunProbePass(context));
      drain_index_ = 0;
      drain_scan_ = ChunkCollection::ScanState{};
    }
    out->SetCardinality(0);
    track_probe();
    return Status::OK();
  }
  Status status = ProbeChunk(context, child(0), &probe_, out);
  track_probe();
  return status;
}

Status PhysicalHashJoin::RouteProbeSide(ExecutionContext* context) {
  probe_codec_ = std::make_unique<RowCodec>(children_[0]->types());
  std::array<std::unique_ptr<SpillRowStore>, JoinHashTable::kPartitions>
      stashes;
  for (auto& stash : stashes) {
    stash = std::make_unique<SpillRowStore>(context->buffers);
  }
  DataChunk chunk;
  chunk.Initialize(children_[0]->types());
  DataChunk keys;
  keys.Initialize(KeyTypes(conditions_, /*left_side=*/true));
  std::vector<ExprPtr> exprs;
  for (const auto& c : conditions_) exprs.push_back(c.left->Copy());
  std::vector<uint64_t> hashes(kVectorSize);
  std::vector<uint8_t> row;
  while (true) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &chunk));
    if (chunk.size() == 0) break;
    MALLARD_RETURN_NOT_OK(EvaluateKeys(exprs, chunk, &keys));
    HashKeyColumns(keys, chunk.size(), hashes.data());
    for (idx_t r = 0; r < chunk.size(); r++) {
      row.clear();
      row.resize(8);
      std::memcpy(row.data(), &hashes[r], 8);
      probe_codec_->EncodeRow(chunk, r, &row);
      idx_t p = JoinHashTable::PartitionOf(hashes[r], table_->radix_shift());
      MALLARD_RETURN_NOT_OK(
          stashes[p]->Append(row.data(), static_cast<uint32_t>(row.size())));
    }
  }
  for (auto& stash : stashes) stash->FinishAppend();
  PushGraceJobs(nullptr, table_.get(), &stashes);
  return Status::OK();
}

void PhysicalHashJoin::PushGraceJobs(
    std::shared_ptr<JoinHashTable> owner, JoinHashTable* table,
    std::array<std::unique_ptr<SpillRowStore>, JoinHashTable::kPartitions>*
        stashes) {
  // LIFO stack: spilled partitions go on first, resident ones on top, so
  // resident partitions are joined before reload pressure from spilled
  // ones can evict them.
  for (int pass = 0; pass < 2; pass++) {
    bool want_resident = pass == 1;
    for (idx_t p = 0; p < JoinHashTable::kPartitions; p++) {
      if (table->PartitionResident(p) != want_resident) continue;
      GraceJob job;
      job.owner = owner;
      job.table = table;
      job.partition = p;
      job.stash = std::move((*stashes)[p]);
      grace_jobs_.push_back(std::move(job));
    }
  }
}

Status PhysicalHashJoin::SplitGraceJob(ExecutionContext* context,
                                       GraceJob job) {
  JoinHashTable* table = job.table;
  idx_t p = job.partition;
  int child_shift = table->radix_shift() + JoinHashTable::kRadixBits;
  auto sub = std::make_shared<JoinHashTable>(
      KeyTypes(conditions_, /*left_side=*/false), right_types_);
  sub->EnableSpilling(context->governor, /*divisor=*/2, child_shift);
  // Rebuild the oversized partition into a table partitioned on the
  // next 4 hash bits, scanning one segment at a time so the partition
  // is never loaded wholesale.
  DataChunk keys;
  keys.Initialize(KeyTypes(conditions_, /*left_side=*/false));
  DataChunk payload;
  payload.Initialize(right_types_);
  JoinHashTable::ScanCursor cursor;
  while (true) {
    idx_t n = 0;
    MALLARD_RETURN_NOT_OK(
        table->ScanPartition(p, &cursor, &keys, &payload, &n));
    if (n == 0) break;
    MALLARD_RETURN_NOT_OK(sub->Append(context, keys, payload, n));
  }
  table->DropPartition(p);
  MALLARD_RETURN_NOT_OK(sub->Finalize());
  if (!sub->GraceMode()) {
    // The finer split fits in budget: probe the whole child table with
    // the parent partition's stash.
    GraceJob whole;
    whole.owner = sub;
    whole.table = sub.get();
    whole.whole_table = true;
    whole.stash = std::move(job.stash);
    grace_jobs_.push_back(std::move(whole));
    return Status::OK();
  }
  // Still over budget at the finer level (skewed keys): re-route the
  // stash by the deeper radix digit and recurse per sub-partition.
  std::array<std::unique_ptr<SpillRowStore>, JoinHashTable::kPartitions>
      stashes;
  for (auto& stash : stashes) {
    stash = std::make_unique<SpillRowStore>(context->buffers);
  }
  SpillRowStore::Cursor read;
  while (true) {
    const uint8_t* row;
    uint32_t len;
    MALLARD_RETURN_NOT_OK(job.stash->Next(&read, &row, &len));
    if (!row) break;
    uint64_t hash;
    std::memcpy(&hash, row, 8);
    idx_t sp = JoinHashTable::PartitionOf(hash, child_shift);
    MALLARD_RETURN_NOT_OK(stashes[sp]->Append(row, len));
  }
  for (auto& stash : stashes) stash->FinishAppend();
  PushGraceJobs(sub, sub.get(), &stashes);
  return Status::OK();
}

Status PhysicalHashJoin::PrepareGraceJob(ExecutionContext* context,
                                         GraceJob job) {
  JoinHashTable* table = job.table;
  if (!job.whole_table) {
    idx_t p = job.partition;
    if (!job.stash || job.stash->rows() == 0) {
      // No probe rows landed here: no matches and nothing to NULL-pad.
      table->DropPartition(p);
      return Status::OK();
    }
    // A partition that alone exceeds the budget splits recursively —
    // unless the shift is exhausted (identical-hash skew) or the
    // partition is small in rows; then it is processed whole, degraded.
    if (table->PartitionBytes(p) > table->SpillBudget() &&
        table->radix_shift() < JoinHashTable::kMaxRadixShift &&
        table->PartitionRows(p) > kVectorSize) {
      return SplitGraceJob(context, std::move(job));
    }
    MALLARD_RETURN_NOT_OK(table->LoadPartition(p));
    MALLARD_RETURN_NOT_OK(table->FinalizePartition(p));
  }
  probe_table_ = table;
  grace_source_ = std::make_unique<GraceStashScan>(
      children_[0]->types(), job.stash.get(), probe_codec_.get());
  // Fresh serial cursor for this job's stash replay.
  probe_.chunk.Reset();
  probe_.position = 0;
  probe_.chain_ref = JoinHashTable::kNullRef;
  probe_.chain_active = false;
  probe_.row_matched = false;
  probe_.exhausted = false;
  grace_current_ = std::move(job);
  grace_active_ = true;
  return Status::OK();
}

Status PhysicalHashJoin::GraceProbe(ExecutionContext* context,
                                    DataChunk* out) {
  if (!grace_routed_) {
    MALLARD_RETURN_NOT_OK(RouteProbeSide(context));
    grace_routed_ = true;
  }
  while (true) {
    if (grace_active_) {
      MALLARD_RETURN_NOT_OK(
          ProbeChunk(context, grace_source_.get(), &probe_, out));
      if (out->size() > 0) return Status::OK();
      // Job drained: free its partition (and stash) before the next.
      if (!grace_current_.whole_table) {
        grace_current_.table->DropPartition(grace_current_.partition);
      }
      grace_source_.reset();
      grace_current_ = GraceJob{};
      grace_active_ = false;
      continue;
    }
    if (grace_jobs_.empty()) {
      out->Reset();
      out->SetCardinality(0);
      return Status::OK();
    }
    GraceJob job = std::move(grace_jobs_.back());
    grace_jobs_.pop_back();
    MALLARD_RETURN_NOT_OK(PrepareGraceJob(context, std::move(job)));
  }
}

std::string PhysicalHashJoin::name() const {
  std::string result = "HASH_JOIN(";
  for (size_t i = 0; i < conditions_.size(); i++) {
    if (i > 0) result += " AND ";
    result += conditions_[i].left->ToString() + " = " +
              conditions_[i].right->ToString();
  }
  return result + ")";
}

// ---------------------------------------------------------------------------
// PhysicalMergeJoin
// ---------------------------------------------------------------------------

PhysicalMergeJoin::PhysicalMergeJoin(JoinType join_type,
                                     std::vector<JoinCondition> conditions,
                                     std::unique_ptr<PhysicalOperator> left,
                                     std::unique_ptr<PhysicalOperator> right)
    : PhysicalOperator(
          JoinOutputTypes(join_type, left->types(), right->types())),
      join_type_(join_type),
      conditions_(std::move(conditions)),
      left_types_(left->types()),
      right_types_(right->types()) {
  left_chunk_.Initialize(left_types_);
  right_chunk_.Initialize(right_types_);
  left_keys_.Initialize(KeyTypes(conditions_, true));
  right_keys_.Initialize(KeyTypes(conditions_, false));
  AddChild(std::move(left));
  AddChild(std::move(right));
}

Status PhysicalMergeJoin::SortInputs(ExecutionContext* context) {
  // Sort keys are materialized as leading columns so the sorted stream
  // can be compared without re-evaluating expressions:
  // sorted layout = [key columns..., payload columns...].
  auto sort_side = [&](PhysicalOperator* source,
                       const std::vector<TypeId>& payload_types,
                       bool left_side) -> Result<std::unique_ptr<ExternalSort>> {
    std::vector<TypeId> all_types = KeyTypes(conditions_, left_side);
    idx_t key_count = all_types.size();
    all_types.insert(all_types.end(), payload_types.begin(),
                     payload_types.end());
    std::vector<SortSpec> specs;
    for (idx_t i = 0; i < key_count; i++) {
      specs.push_back(SortSpec{i, true, true});
    }
    auto sorter = std::make_unique<ExternalSort>(
        all_types, specs, context->buffers, context->governor);
    DataChunk input;
    input.Initialize(payload_types);
    DataChunk widened;
    widened.Initialize(all_types);
    DataChunk keys;
    keys.Initialize(KeyTypes(conditions_, left_side));
    std::vector<ExprPtr> exprs;
    for (auto& c : conditions_) {
      exprs.push_back(left_side ? c.left->Copy() : c.right->Copy());
    }
    while (true) {
      MALLARD_RETURN_NOT_OK(source->GetChunk(context, &input));
      if (input.size() == 0) break;
      widened.Reset();
      for (idx_t k = 0; k < key_count; k++) {
        MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
            *exprs[k], input, &widened.column(k)));
      }
      for (idx_t c = 0; c < payload_types.size(); c++) {
        widened.column(key_count + c).Reference(input.column(c));
      }
      widened.SetCardinality(input.size());
      MALLARD_RETURN_NOT_OK(sorter->Sink(widened));
    }
    MALLARD_RETURN_NOT_OK(sorter->Finalize());
    return sorter;
  };
  MALLARD_ASSIGN_OR_RETURN(left_sort_,
                           sort_side(child(0), left_types_, true));
  MALLARD_ASSIGN_OR_RETURN(right_sort_,
                           sort_side(child(1), right_types_, false));
  // Re-initialize cursor chunks with the widened layouts.
  std::vector<TypeId> lt = KeyTypes(conditions_, true);
  lt.insert(lt.end(), left_types_.begin(), left_types_.end());
  left_chunk_.Initialize(lt);
  std::vector<TypeId> rt = KeyTypes(conditions_, false);
  rt.insert(rt.end(), right_types_.begin(), right_types_.end());
  right_chunk_.Initialize(rt);
  sorted_ = true;
  return Status::OK();
}

Status PhysicalMergeJoin::AdvanceLeft() {
  left_position_++;
  if (left_position_ >= left_chunk_.size()) {
    MALLARD_RETURN_NOT_OK(left_sort_->GetChunk(&left_chunk_));
    left_position_ = 0;
    if (left_chunk_.size() == 0) left_done_ = true;
  }
  return Status::OK();
}

Status PhysicalMergeJoin::LoadNextRightGroup() {
  group_rows_.clear();
  group_valid_ = false;
  auto specs = KeySpecs(conditions_.size());
  idx_t key_count = conditions_.size();
  while (!right_done_) {
    if (right_position_ >= right_chunk_.size()) {
      MALLARD_RETURN_NOT_OK(right_sort_->GetChunk(&right_chunk_));
      right_position_ = 0;
      if (right_chunk_.size() == 0) {
        right_done_ = true;
        break;
      }
    }
    // Key of the row at right_position_ (skip NULL keys).
    bool has_null = false;
    for (idx_t k = 0; k < key_count; k++) {
      if (!right_chunk_.column(k).validity().RowIsValid(right_position_)) {
        has_null = true;
        break;
      }
    }
    if (has_null) {
      right_position_++;
      continue;
    }
    std::string key;
    // Build a key-only view chunk by encoding the first key_count columns.
    EncodeSortKey(right_chunk_, right_position_, specs, &key);
    if (!group_valid_) {
      group_key_ = key;
      group_valid_ = true;
    } else if (key != group_key_) {
      return Status::OK();  // next group starts here
    }
    std::vector<Value> row;
    for (idx_t c = 0; c < right_types_.size(); c++) {
      row.push_back(right_chunk_.GetValue(key_count + c, right_position_));
    }
    group_rows_.push_back(std::move(row));
    right_position_++;
  }
  return Status::OK();
}

Status PhysicalMergeJoin::GetChunk(ExecutionContext* context, DataChunk* out) {
  if (!sorted_) {
    MALLARD_RETURN_NOT_OK(SortInputs(context));
    MALLARD_RETURN_NOT_OK(left_sort_->GetChunk(&left_chunk_));
    left_position_ = 0;
    left_done_ = left_chunk_.size() == 0;
    MALLARD_RETURN_NOT_OK(LoadNextRightGroup());
  }
  out->Reset();
  idx_t key_count = conditions_.size();
  auto specs = KeySpecs(key_count);
  idx_t produced = 0;
  auto emit_left_row = [&](bool null_pad) {
    for (idx_t c = 0; c < left_types_.size(); c++) {
      out->column(c).CopyFrom(left_chunk_.column(key_count + c), 1,
                              left_position_, produced);
    }
    if (null_pad && (join_type_ == JoinType::kLeft)) {
      for (idx_t c = left_types_.size(); c < out->ColumnCount(); c++) {
        out->column(c).validity().SetInvalid(produced);
      }
    }
  };

  while (produced < kVectorSize && !left_done_) {
    if (emitting_matches_) {
      while (emit_group_index_ < group_rows_.size() &&
             produced < kVectorSize) {
        emit_left_row(false);
        const auto& row = group_rows_[emit_group_index_];
        for (idx_t c = 0; c < right_types_.size(); c++) {
          out->SetValue(left_types_.size() + c, produced, row[c]);
        }
        produced++;
        emit_group_index_++;
      }
      if (emit_group_index_ >= group_rows_.size()) {
        emitting_matches_ = false;
        MALLARD_RETURN_NOT_OK(AdvanceLeft());
      }
      continue;
    }
    // Left row key (NULL keys never match).
    bool has_null = false;
    for (idx_t k = 0; k < key_count; k++) {
      if (!left_chunk_.column(k).validity().RowIsValid(left_position_)) {
        has_null = true;
        break;
      }
    }
    std::string left_key;
    if (!has_null) {
      EncodeSortKey(left_chunk_, left_position_, specs, &left_key);
    }
    if (has_null) {
      if (join_type_ == JoinType::kLeft || join_type_ == JoinType::kAnti) {
        emit_left_row(true);
        produced++;
      }
      MALLARD_RETURN_NOT_OK(AdvanceLeft());
      continue;
    }
    // Advance right groups until group_key >= left_key.
    while (group_valid_ && group_key_ < left_key) {
      MALLARD_RETURN_NOT_OK(LoadNextRightGroup());
    }
    bool match = group_valid_ && group_key_ == left_key;
    switch (join_type_) {
      case JoinType::kInner:
      case JoinType::kLeft:
        if (match) {
          emitting_matches_ = true;
          emit_group_index_ = 0;
        } else {
          if (join_type_ == JoinType::kLeft) {
            emit_left_row(true);
            produced++;
          }
          MALLARD_RETURN_NOT_OK(AdvanceLeft());
        }
        break;
      case JoinType::kSemi:
      case JoinType::kAnti:
        if ((join_type_ == JoinType::kSemi) == match) {
          emit_left_row(false);
          produced++;
        }
        MALLARD_RETURN_NOT_OK(AdvanceLeft());
        break;
    }
  }
  out->SetCardinality(produced);
  return Status::OK();
}

std::string PhysicalMergeJoin::name() const {
  std::string result = "MERGE_JOIN(";
  for (size_t i = 0; i < conditions_.size(); i++) {
    if (i > 0) result += " AND ";
    result += conditions_[i].left->ToString() + " = " +
              conditions_[i].right->ToString();
  }
  return result + ")";
}

// ---------------------------------------------------------------------------
// PhysicalCrossProduct
// ---------------------------------------------------------------------------

PhysicalCrossProduct::PhysicalCrossProduct(
    std::unique_ptr<PhysicalOperator> left,
    std::unique_ptr<PhysicalOperator> right)
    : PhysicalOperator(
          JoinOutputTypes(JoinType::kInner, left->types(), right->types())) {
  left_chunk_.Initialize(left->types());
  right_chunk_.Initialize(right->types());
  AddChild(std::move(left));
  AddChild(std::move(right));
}

Status PhysicalCrossProduct::GetChunk(ExecutionContext* context,
                                      DataChunk* out) {
  if (!materialized_) {
    right_data_ = std::make_unique<ChunkCollection>(child(1)->types(),
                                                    context->governor);
    DataChunk chunk;
    chunk.Initialize(child(1)->types());
    while (true) {
      MALLARD_RETURN_NOT_OK(child(1)->GetChunk(context, &chunk));
      if (chunk.size() == 0) break;
      MALLARD_RETURN_NOT_OK(right_data_->Append(chunk));
    }
    right_data_->Finalize();
    materialized_ = true;
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &left_chunk_));
    left_done_ = left_chunk_.size() == 0;
    left_position_ = 0;
    right_scan_ = ChunkCollection::ScanState();
    MALLARD_RETURN_NOT_OK(right_data_->Scan(&right_scan_, &right_chunk_));
    right_position_ = 0;
  }
  out->Reset();
  idx_t produced = 0;
  idx_t left_width = left_chunk_.ColumnCount();
  while (produced < kVectorSize && !left_done_) {
    if (right_position_ >= right_chunk_.size()) {
      MALLARD_RETURN_NOT_OK(right_data_->Scan(&right_scan_, &right_chunk_));
      right_position_ = 0;
      if (right_chunk_.size() == 0) {
        // Right exhausted: advance left, restart right.
        left_position_++;
        if (left_position_ >= left_chunk_.size()) {
          MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &left_chunk_));
          left_position_ = 0;
          if (left_chunk_.size() == 0) {
            left_done_ = true;
            break;
          }
        }
        right_scan_ = ChunkCollection::ScanState();
        MALLARD_RETURN_NOT_OK(right_data_->Scan(&right_scan_, &right_chunk_));
        right_position_ = 0;
        if (right_chunk_.size() == 0) {
          // Empty right side: cross product is empty.
          left_done_ = true;
          break;
        }
      }
      continue;
    }
    for (idx_t c = 0; c < left_width; c++) {
      out->column(c).CopyFrom(left_chunk_.column(c), 1, left_position_,
                              produced);
    }
    for (idx_t c = 0; c < right_chunk_.ColumnCount(); c++) {
      out->column(left_width + c)
          .CopyFrom(right_chunk_.column(c), 1, right_position_, produced);
    }
    produced++;
    right_position_++;
  }
  out->SetCardinality(produced);
  return Status::OK();
}

std::string PhysicalCrossProduct::name() const { return "CROSS_PRODUCT"; }

}  // namespace mallard
