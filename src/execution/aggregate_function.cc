#include "mallard/execution/aggregate_function.h"

namespace mallard {

TypeId AggregateFunction::ResolveType(AggType type, TypeId arg_type) {
  switch (type) {
    case AggType::kCountStar:
    case AggType::kCount:
      return TypeId::kBigInt;
    case AggType::kSum:
      return arg_type == TypeId::kDouble ? TypeId::kDouble : TypeId::kBigInt;
    case AggType::kAvg:
      return TypeId::kDouble;
    case AggType::kMin:
    case AggType::kMax:
      return arg_type;
  }
  return TypeId::kInvalid;
}

void AggregateFunction::Update(AggType type, const Vector* arg, idx_t row,
                               AggState* state) {
  if (type == AggType::kCountStar) {
    state->count++;
    return;
  }
  if (!arg->validity().RowIsValid(row)) return;  // NULLs ignored
  switch (type) {
    case AggType::kCount:
      state->count++;
      break;
    case AggType::kSum:
    case AggType::kAvg:
      state->count++;
      switch (arg->type()) {
        case TypeId::kInteger:
          state->isum += arg->data<int32_t>()[row];
          state->dsum += arg->data<int32_t>()[row];
          break;
        case TypeId::kBigInt:
          state->isum += arg->data<int64_t>()[row];
          state->dsum += static_cast<double>(arg->data<int64_t>()[row]);
          break;
        case TypeId::kDouble:
          state->dsum += arg->data<double>()[row];
          break;
        default:
          break;
      }
      state->seen = true;
      break;
    case AggType::kMin:
    case AggType::kMax: {
      Value v = arg->GetValue(row);
      if (!state->seen) {
        state->extreme = v;
        state->seen = true;
      } else if (type == AggType::kMin ? v.Compare(state->extreme) < 0
                                       : v.Compare(state->extreme) > 0) {
        state->extreme = v;
      }
      break;
    }
    default:
      break;
  }
}

void AggregateFunction::UpdateValue(AggType type, const Value& v,
                                    AggState* state) {
  if (type == AggType::kCountStar) {
    state->count++;
    return;
  }
  if (v.is_null()) return;
  switch (type) {
    case AggType::kCount:
      state->count++;
      break;
    case AggType::kSum:
    case AggType::kAvg:
      state->count++;
      state->isum += v.GetAsBigInt();
      state->dsum += v.GetAsDouble();
      state->seen = true;
      break;
    case AggType::kMin:
    case AggType::kMax:
      if (!state->seen) {
        state->extreme = v;
        state->seen = true;
      } else if (type == AggType::kMin ? v.Compare(state->extreme) < 0
                                       : v.Compare(state->extreme) > 0) {
        state->extreme = v;
      }
      break;
    default:
      break;
  }
}

void AggregateFunction::Combine(AggType type, const AggState& src,
                                AggState* dst) {
  switch (type) {
    case AggType::kCountStar:
    case AggType::kCount:
      dst->count += src.count;
      break;
    case AggType::kSum:
    case AggType::kAvg:
      dst->count += src.count;
      dst->isum += src.isum;
      dst->dsum += src.dsum;
      dst->seen = dst->seen || src.seen;
      break;
    case AggType::kMin:
    case AggType::kMax:
      if (!src.seen) break;
      if (!dst->seen || (type == AggType::kMin
                             ? src.extreme.Compare(dst->extreme) < 0
                             : src.extreme.Compare(dst->extreme) > 0)) {
        dst->extreme = src.extreme;
        dst->seen = true;
      }
      break;
  }
}

Value AggregateFunction::Finalize(AggType type, TypeId result_type,
                                  const AggState& state) {
  switch (type) {
    case AggType::kCountStar:
    case AggType::kCount:
      return Value::BigInt(state.count);
    case AggType::kSum:
      if (!state.seen) return Value::Null(result_type);
      if (result_type == TypeId::kDouble) return Value::Double(state.dsum);
      return Value::BigInt(state.isum);
    case AggType::kAvg:
      if (state.count == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(state.dsum / static_cast<double>(state.count));
    case AggType::kMin:
    case AggType::kMax:
      if (!state.seen) return Value::Null(result_type);
      return state.extreme;
  }
  return Value();
}

const char* AggregateFunction::Name(AggType type) {
  switch (type) {
    case AggType::kCountStar:
      return "count_star";
    case AggType::kCount:
      return "count";
    case AggType::kSum:
      return "sum";
    case AggType::kAvg:
      return "avg";
    case AggType::kMin:
      return "min";
    case AggType::kMax:
      return "max";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// AggStateLayout — compact fixed-width state rows
// ---------------------------------------------------------------------------

namespace {

// Slot state structs. All are trivially copyable and all-zero-initial;
// rows are 8-aligned so direct member access through a cast is safe.
struct SumI64 {
  int64_t sum;
  int64_t count;
};
struct SumF64 {
  double sum;
  int64_t count;
};
struct MinMax32 {
  int32_t value;
  int32_t seen;
};
template <typename T>
struct MinMax64 {
  T value;
  int64_t seen;
};

template <typename T, typename State>
void UpdateSumSlot(const Vector& arg, idx_t count, const idx_t* group_ids,
                   const uint32_t* sel, uint8_t* base, idx_t row_size,
                   uint32_t offset) {
  const T* data = arg.data<T>();
  const ValidityMask& validity = arg.validity();
  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel ? sel[i] : i;
    if (!validity.RowIsValid(r)) continue;
    State* s =
        reinterpret_cast<State*>(base + group_ids[i] * row_size + offset);
    s->sum += data[r];
    s->count++;
  }
}

template <typename T, typename State, bool kIsMin>
void UpdateMinMaxSlot(const Vector& arg, idx_t count, const idx_t* group_ids,
                      const uint32_t* sel, uint8_t* base, idx_t row_size,
                      uint32_t offset) {
  const T* data = arg.data<T>();
  const ValidityMask& validity = arg.validity();
  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel ? sel[i] : i;
    if (!validity.RowIsValid(r)) continue;
    State* s =
        reinterpret_cast<State*>(base + group_ids[i] * row_size + offset);
    T v = data[r];
    if (!s->seen || (kIsMin ? v < s->value : v > s->value)) {
      s->value = v;
      s->seen = 1;
    }
  }
}

template <typename State, bool kIsMin>
void CombineMinMaxSlot(const uint8_t* src_base, idx_t src_first, idx_t count,
                       const idx_t* dst_ids, uint8_t* dst_base,
                       idx_t row_size, uint32_t offset) {
  for (idx_t i = 0; i < count; i++) {
    const State* src = reinterpret_cast<const State*>(
        src_base + (src_first + i) * row_size + offset);
    if (!src->seen) continue;
    State* dst =
        reinterpret_cast<State*>(dst_base + dst_ids[i] * row_size + offset);
    if (!dst->seen ||
        (kIsMin ? src->value < dst->value : src->value > dst->value)) {
      dst->value = src->value;
      dst->seen = 1;
    }
  }
}

template <typename State>
void CombineSumSlot(const uint8_t* src_base, idx_t src_first, idx_t count,
                    const idx_t* dst_ids, uint8_t* dst_base, idx_t row_size,
                    uint32_t offset) {
  for (idx_t i = 0; i < count; i++) {
    const State* src = reinterpret_cast<const State*>(
        src_base + (src_first + i) * row_size + offset);
    State* dst =
        reinterpret_cast<State*>(dst_base + dst_ids[i] * row_size + offset);
    dst->sum += src->sum;
    dst->count += src->count;
  }
}

/// Bytes of a slot's state; 0 = no fixed-width encoding exists.
uint32_t SlotSize(AggType type, TypeId arg_type) {
  switch (type) {
    case AggType::kCountStar:
      return 8;
    case AggType::kCount:
      // COUNT(x) only reads the argument's validity mask; any argument
      // type works.
      return 8;
    case AggType::kSum:
    case AggType::kAvg:
      switch (arg_type) {
        case TypeId::kInteger:
        case TypeId::kBigInt:
        case TypeId::kDouble:
          return 16;
        default:
          return 0;
      }
    case AggType::kMin:
    case AggType::kMax:
      switch (arg_type) {
        case TypeId::kInteger:
        case TypeId::kDate:
          return 8;
        case TypeId::kBigInt:
        case TypeId::kTimestamp:
        case TypeId::kDouble:
          return 16;
        default:
          return 0;  // VARCHAR/BOOLEAN extremes keep the AggState path
      }
  }
  return 0;
}

}  // namespace

bool AggStateLayout::Compactable(AggType type, TypeId arg_type) {
  return SlotSize(type, arg_type) != 0;
}

AggStateLayout AggStateLayout::Plan(
    const std::vector<BoundAggregate>& aggregates) {
  AggStateLayout layout;
  uint32_t offset = 0;
  for (const auto& agg : aggregates) {
    TypeId arg_type = agg.arg ? agg.arg->return_type() : TypeId::kInvalid;
    uint32_t size = SlotSize(agg.type, arg_type);
    if (size == 0) return AggStateLayout{};  // compact() == false
    layout.slots_.push_back(
        AggStateSlot{agg.type, arg_type, agg.return_type, offset});
    offset += size;  // slots are 8 or 16 bytes: 8-alignment is preserved
  }
  layout.row_size_ = offset;
  layout.compact_ = true;
  return layout;
}

void AggStateLayout::Update(idx_t slot_index, const Vector* arg, idx_t count,
                            const idx_t* group_ids, const uint32_t* sel,
                            uint8_t* base) const {
  const AggStateSlot& slot = slots_[slot_index];
  const idx_t row_size = row_size_;
  const uint32_t offset = slot.offset;
  if (slot.type == AggType::kCountStar) {
    for (idx_t i = 0; i < count; i++) {
      ++*reinterpret_cast<int64_t*>(base + group_ids[i] * row_size + offset);
    }
    return;
  }
  if (slot.type == AggType::kCount) {
    const ValidityMask& validity = arg->validity();
    for (idx_t i = 0; i < count; i++) {
      idx_t r = sel ? sel[i] : i;
      if (!validity.RowIsValid(r)) continue;
      ++*reinterpret_cast<int64_t*>(base + group_ids[i] * row_size + offset);
    }
    return;
  }
  if (slot.type == AggType::kSum || slot.type == AggType::kAvg) {
    switch (slot.arg_type) {
      case TypeId::kInteger:
        UpdateSumSlot<int32_t, SumI64>(*arg, count, group_ids, sel, base,
                                       row_size, offset);
        return;
      case TypeId::kBigInt:
        UpdateSumSlot<int64_t, SumI64>(*arg, count, group_ids, sel, base,
                                       row_size, offset);
        return;
      case TypeId::kDouble:
        UpdateSumSlot<double, SumF64>(*arg, count, group_ids, sel, base,
                                      row_size, offset);
        return;
      default:
        return;
    }
  }
  const bool is_min = slot.type == AggType::kMin;
  switch (slot.arg_type) {
    case TypeId::kInteger:
    case TypeId::kDate:
      if (is_min) {
        UpdateMinMaxSlot<int32_t, MinMax32, true>(*arg, count, group_ids, sel,
                                                  base, row_size, offset);
      } else {
        UpdateMinMaxSlot<int32_t, MinMax32, false>(*arg, count, group_ids,
                                                   sel, base, row_size,
                                                   offset);
      }
      return;
    case TypeId::kBigInt:
    case TypeId::kTimestamp:
      if (is_min) {
        UpdateMinMaxSlot<int64_t, MinMax64<int64_t>, true>(
            *arg, count, group_ids, sel, base, row_size, offset);
      } else {
        UpdateMinMaxSlot<int64_t, MinMax64<int64_t>, false>(
            *arg, count, group_ids, sel, base, row_size, offset);
      }
      return;
    case TypeId::kDouble:
      if (is_min) {
        UpdateMinMaxSlot<double, MinMax64<double>, true>(
            *arg, count, group_ids, sel, base, row_size, offset);
      } else {
        UpdateMinMaxSlot<double, MinMax64<double>, false>(
            *arg, count, group_ids, sel, base, row_size, offset);
      }
      return;
    default:
      return;
  }
}

void AggStateLayout::Combine(const uint8_t* src_base, idx_t src_first,
                             idx_t count, const idx_t* dst_ids,
                             uint8_t* dst_base) const {
  const idx_t row_size = row_size_;
  for (const AggStateSlot& slot : slots_) {
    const uint32_t offset = slot.offset;
    switch (slot.type) {
      case AggType::kCountStar:
      case AggType::kCount:
        for (idx_t i = 0; i < count; i++) {
          *reinterpret_cast<int64_t*>(dst_base + dst_ids[i] * row_size +
                                      offset) +=
              *reinterpret_cast<const int64_t*>(
                  src_base + (src_first + i) * row_size + offset);
        }
        break;
      case AggType::kSum:
      case AggType::kAvg:
        if (slot.arg_type == TypeId::kDouble) {
          CombineSumSlot<SumF64>(src_base, src_first, count, dst_ids,
                                 dst_base, row_size, offset);
        } else {
          CombineSumSlot<SumI64>(src_base, src_first, count, dst_ids,
                                 dst_base, row_size, offset);
        }
        break;
      case AggType::kMin:
      case AggType::kMax: {
        const bool is_min = slot.type == AggType::kMin;
        switch (slot.arg_type) {
          case TypeId::kInteger:
          case TypeId::kDate:
            if (is_min) {
              CombineMinMaxSlot<MinMax32, true>(src_base, src_first, count,
                                                dst_ids, dst_base, row_size,
                                                offset);
            } else {
              CombineMinMaxSlot<MinMax32, false>(src_base, src_first, count,
                                                 dst_ids, dst_base, row_size,
                                                 offset);
            }
            break;
          case TypeId::kBigInt:
          case TypeId::kTimestamp:
            if (is_min) {
              CombineMinMaxSlot<MinMax64<int64_t>, true>(
                  src_base, src_first, count, dst_ids, dst_base, row_size,
                  offset);
            } else {
              CombineMinMaxSlot<MinMax64<int64_t>, false>(
                  src_base, src_first, count, dst_ids, dst_base, row_size,
                  offset);
            }
            break;
          case TypeId::kDouble:
            if (is_min) {
              CombineMinMaxSlot<MinMax64<double>, true>(
                  src_base, src_first, count, dst_ids, dst_base, row_size,
                  offset);
            } else {
              CombineMinMaxSlot<MinMax64<double>, false>(
                  src_base, src_first, count, dst_ids, dst_base, row_size,
                  offset);
            }
            break;
          default:
            break;
        }
        break;
      }
    }
  }
}

Value AggStateLayout::Finalize(idx_t slot_index, const uint8_t* row) const {
  const AggStateSlot& slot = slots_[slot_index];
  const uint8_t* p = row + slot.offset;
  switch (slot.type) {
    case AggType::kCountStar:
    case AggType::kCount:
      return Value::BigInt(*reinterpret_cast<const int64_t*>(p));
    case AggType::kSum: {
      if (slot.arg_type == TypeId::kDouble) {
        const SumF64* s = reinterpret_cast<const SumF64*>(p);
        return s->count ? Value::Double(s->sum)
                        : Value::Null(slot.result_type);
      }
      const SumI64* s = reinterpret_cast<const SumI64*>(p);
      return s->count ? Value::BigInt(s->sum) : Value::Null(slot.result_type);
    }
    case AggType::kAvg: {
      if (slot.arg_type == TypeId::kDouble) {
        const SumF64* s = reinterpret_cast<const SumF64*>(p);
        return s->count
                   ? Value::Double(s->sum / static_cast<double>(s->count))
                   : Value::Null(TypeId::kDouble);
      }
      // Integer arguments accumulate an exact int64 sum; dividing once at
      // finalize is at least as accurate as the old per-row double
      // accumulation.
      const SumI64* s = reinterpret_cast<const SumI64*>(p);
      return s->count
                 ? Value::Double(static_cast<double>(s->sum) /
                                 static_cast<double>(s->count))
                 : Value::Null(TypeId::kDouble);
    }
    case AggType::kMin:
    case AggType::kMax:
      switch (slot.arg_type) {
        case TypeId::kInteger: {
          const MinMax32* s = reinterpret_cast<const MinMax32*>(p);
          return s->seen ? Value::Integer(s->value)
                         : Value::Null(slot.result_type);
        }
        case TypeId::kDate: {
          const MinMax32* s = reinterpret_cast<const MinMax32*>(p);
          return s->seen ? Value::Date(s->value)
                         : Value::Null(slot.result_type);
        }
        case TypeId::kBigInt: {
          const MinMax64<int64_t>* s =
              reinterpret_cast<const MinMax64<int64_t>*>(p);
          return s->seen ? Value::BigInt(s->value)
                         : Value::Null(slot.result_type);
        }
        case TypeId::kTimestamp: {
          const MinMax64<int64_t>* s =
              reinterpret_cast<const MinMax64<int64_t>*>(p);
          return s->seen ? Value::Timestamp(s->value)
                         : Value::Null(slot.result_type);
        }
        case TypeId::kDouble: {
          const MinMax64<double>* s =
              reinterpret_cast<const MinMax64<double>*>(p);
          return s->seen ? Value::Double(s->value)
                         : Value::Null(slot.result_type);
        }
        default:
          return Value::Null(slot.result_type);
      }
  }
  return Value();
}

}  // namespace mallard
