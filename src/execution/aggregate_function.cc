#include "mallard/execution/aggregate_function.h"

namespace mallard {

TypeId AggregateFunction::ResolveType(AggType type, TypeId arg_type) {
  switch (type) {
    case AggType::kCountStar:
    case AggType::kCount:
      return TypeId::kBigInt;
    case AggType::kSum:
      return arg_type == TypeId::kDouble ? TypeId::kDouble : TypeId::kBigInt;
    case AggType::kAvg:
      return TypeId::kDouble;
    case AggType::kMin:
    case AggType::kMax:
      return arg_type;
  }
  return TypeId::kInvalid;
}

void AggregateFunction::Update(AggType type, const Vector* arg, idx_t row,
                               AggState* state) {
  if (type == AggType::kCountStar) {
    state->count++;
    return;
  }
  if (!arg->validity().RowIsValid(row)) return;  // NULLs ignored
  switch (type) {
    case AggType::kCount:
      state->count++;
      break;
    case AggType::kSum:
    case AggType::kAvg:
      state->count++;
      switch (arg->type()) {
        case TypeId::kInteger:
          state->isum += arg->data<int32_t>()[row];
          state->dsum += arg->data<int32_t>()[row];
          break;
        case TypeId::kBigInt:
          state->isum += arg->data<int64_t>()[row];
          state->dsum += static_cast<double>(arg->data<int64_t>()[row]);
          break;
        case TypeId::kDouble:
          state->dsum += arg->data<double>()[row];
          break;
        default:
          break;
      }
      state->seen = true;
      break;
    case AggType::kMin:
    case AggType::kMax: {
      Value v = arg->GetValue(row);
      if (!state->seen) {
        state->extreme = v;
        state->seen = true;
      } else if (type == AggType::kMin ? v.Compare(state->extreme) < 0
                                       : v.Compare(state->extreme) > 0) {
        state->extreme = v;
      }
      break;
    }
    default:
      break;
  }
}

void AggregateFunction::UpdateValue(AggType type, const Value& v,
                                    AggState* state) {
  if (type == AggType::kCountStar) {
    state->count++;
    return;
  }
  if (v.is_null()) return;
  switch (type) {
    case AggType::kCount:
      state->count++;
      break;
    case AggType::kSum:
    case AggType::kAvg:
      state->count++;
      state->isum += v.GetAsBigInt();
      state->dsum += v.GetAsDouble();
      state->seen = true;
      break;
    case AggType::kMin:
    case AggType::kMax:
      if (!state->seen) {
        state->extreme = v;
        state->seen = true;
      } else if (type == AggType::kMin ? v.Compare(state->extreme) < 0
                                       : v.Compare(state->extreme) > 0) {
        state->extreme = v;
      }
      break;
    default:
      break;
  }
}

void AggregateFunction::Combine(AggType type, const AggState& src,
                                AggState* dst) {
  switch (type) {
    case AggType::kCountStar:
    case AggType::kCount:
      dst->count += src.count;
      break;
    case AggType::kSum:
    case AggType::kAvg:
      dst->count += src.count;
      dst->isum += src.isum;
      dst->dsum += src.dsum;
      dst->seen = dst->seen || src.seen;
      break;
    case AggType::kMin:
    case AggType::kMax:
      if (!src.seen) break;
      if (!dst->seen || (type == AggType::kMin
                             ? src.extreme.Compare(dst->extreme) < 0
                             : src.extreme.Compare(dst->extreme) > 0)) {
        dst->extreme = src.extreme;
        dst->seen = true;
      }
      break;
  }
}

Value AggregateFunction::Finalize(AggType type, TypeId result_type,
                                  const AggState& state) {
  switch (type) {
    case AggType::kCountStar:
    case AggType::kCount:
      return Value::BigInt(state.count);
    case AggType::kSum:
      if (!state.seen) return Value::Null(result_type);
      if (result_type == TypeId::kDouble) return Value::Double(state.dsum);
      return Value::BigInt(state.isum);
    case AggType::kAvg:
      if (state.count == 0) return Value::Null(TypeId::kDouble);
      return Value::Double(state.dsum / static_cast<double>(state.count));
    case AggType::kMin:
    case AggType::kMax:
      if (!state.seen) return Value::Null(result_type);
      return state.extreme;
  }
  return Value();
}

const char* AggregateFunction::Name(AggType type) {
  switch (type) {
    case AggType::kCountStar:
      return "count_star";
    case AggType::kCount:
      return "count";
    case AggType::kSum:
      return "sum";
    case AggType::kAvg:
      return "avg";
    case AggType::kMin:
      return "min";
    case AggType::kMax:
      return "max";
  }
  return "unknown";
}

}  // namespace mallard
