#include "mallard/execution/join_hashtable.h"

#include <algorithm>
#include <cstring>

#include "mallard/common/hash.h"
#include "mallard/vector/vector_hash.h"

namespace mallard {

namespace {

constexpr uint64_t kBuildSegmentSize = 1 << 20;

}  // namespace

JoinHashTable::JoinHashTable(std::vector<TypeId> key_types,
                             std::vector<TypeId> payload_types,
                             idx_t directory_size_hint)
    : key_types_(key_types),
      key_codec_(std::move(key_types)),
      payload_codec_(std::move(payload_types)),
      directory_size_hint_(directory_size_hint) {
  hash_scratch_.resize(kVectorSize);
}

Status JoinHashTable::Append(ExecutionContext* context, const DataChunk& keys,
                             const DataChunk& payload, idx_t count) {
  HashKeyColumns(keys, count, hash_scratch_.data());
  for (idx_t r = 0; r < count; r++) {
    bool has_null = false;
    for (idx_t c = 0; c < keys.ColumnCount(); c++) {
      if (!keys.column(c).validity().RowIsValid(r)) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;  // NULL keys never match any probe row
    row_scratch_.clear();
    row_scratch_.resize(kHeaderSize);
    uint64_t next = kNullRef;
    std::memcpy(row_scratch_.data(), &next, 8);
    std::memcpy(row_scratch_.data() + 8, &hash_scratch_[r], 8);
    key_codec_.EncodeRow(keys, r, &row_scratch_);
    uint32_t key_bytes = static_cast<uint32_t>(row_scratch_.size() -
                                               kHeaderSize);
    std::memcpy(row_scratch_.data() + 16, &key_bytes, 4);
    payload_codec_.EncodeRow(payload, r, &row_scratch_);
    uint64_t row_size = row_scratch_.size();
    if (segments_.empty() ||
        segment_used_ + row_size > segments_.back().size()) {
      MALLARD_ASSIGN_OR_RETURN(
          BufferHandle handle,
          context->buffers->Allocate(
              std::max<uint64_t>(kBuildSegmentSize, row_size),
              /*spillable=*/false));
      segments_.push_back(std::move(handle));
      segment_used_ = 0;
    }
    std::memcpy(segments_.back().data() + segment_used_, row_scratch_.data(),
                row_size);
    refs_.push_back(((segments_.size() - 1) << kOffsetBits) | segment_used_);
    segment_used_ += row_size;
    build_bytes_ += row_size;
  }
  return Status::OK();
}

void JoinHashTable::MergePartition(JoinHashTable&& other) {
  uint64_t segment_base = segments_.size();
  for (auto& segment : other.segments_) {
    segments_.push_back(std::move(segment));
  }
  refs_.reserve(refs_.size() + other.refs_.size());
  for (uint64_t ref : other.refs_) {
    refs_.push_back((((ref >> kOffsetBits) + segment_base) << kOffsetBits) |
                    (ref & kOffsetMask));
  }
  // Appends after a merge continue in the stolen tail segment (an empty
  // donor leaves the current tail untouched).
  if (segment_base != segments_.size()) segment_used_ = other.segment_used_;
  build_bytes_ += other.build_bytes_;
  other.segments_.clear();
  other.refs_.clear();
  other.segment_used_ = 0;
  other.build_bytes_ = 0;
}

void JoinHashTable::Finalize() {
  idx_t capacity = directory_size_hint_
                       ? NextPowerOfTwo(directory_size_hint_)
                       : NextPowerOfTwo(std::max<idx_t>(1024, 2 * refs_.size()));
  directory_.assign(capacity, kNullRef);
  mask_ = capacity - 1;
  // Head insertion reverses chain order, so inserting in reverse build
  // order leaves every chain in build order — join output then matches
  // the row-at-a-time implementation this table replaced.
  for (idx_t i = refs_.size(); i > 0; i--) {
    uint64_t ref = refs_[i - 1];
    uint8_t* row = ResolveMutable(ref);
    uint64_t hash;
    std::memcpy(&hash, row + 8, 8);
    uint64_t slot = hash & mask_;
    std::memcpy(row, &directory_[slot], 8);  // next = old head
    directory_[slot] = ref;
  }
}

void JoinHashTable::ProbeHeads(const DataChunk& keys, idx_t count,
                               uint64_t* hashes, uint64_t* heads) const {
  HashKeyColumns(keys, count, hashes);
  for (idx_t r = 0; r < count; r++) {
    heads[r] = directory_[hashes[r] & mask_];
  }
  // Rows with a NULL key component never match.
  for (idx_t c = 0; c < keys.ColumnCount(); c++) {
    const ValidityMask& validity = keys.column(c).validity();
    if (validity.AllValid()) continue;
    for (idx_t r = 0; r < count; r++) {
      if (!validity.RowIsValid(r)) heads[r] = kNullRef;
    }
  }
}

bool JoinHashTable::MatchKeys(const uint8_t* stored, const DataChunk& keys,
                              idx_t row) const {
  const uint8_t* p = stored;
  for (idx_t c = 0; c < key_types_.size(); c++) {
    p++;  // validity byte; stored keys are never NULL
    const Vector& col = keys.column(c);
    switch (key_types_[c]) {
      case TypeId::kBoolean: {
        if (*reinterpret_cast<const int8_t*>(p) != col.data<int8_t>()[row]) {
          return false;
        }
        p += 1;
        break;
      }
      case TypeId::kInteger:
      case TypeId::kDate: {
        int32_t v;
        std::memcpy(&v, p, 4);
        if (v != col.data<int32_t>()[row]) return false;
        p += 4;
        break;
      }
      case TypeId::kBigInt:
      case TypeId::kTimestamp: {
        int64_t v;
        std::memcpy(&v, p, 8);
        if (v != col.data<int64_t>()[row]) return false;
        p += 8;
        break;
      }
      case TypeId::kDouble: {
        // Bit-pattern compare on normalized doubles: -0.0 == +0.0, and
        // NaN keys group bitwise (same behavior as the sort-key
        // encoding the row-at-a-time join used).
        double s, d = NormalizeDouble(col.data<double>()[row]);
        std::memcpy(&s, p, 8);
        s = NormalizeDouble(s);
        if (std::memcmp(&s, &d, 8) != 0) return false;
        p += 8;
        break;
      }
      case TypeId::kVarchar: {
        uint32_t len;
        std::memcpy(&len, p, 4);
        const StringRef& probe = col.data<StringRef>()[row];
        if (len != probe.size ||
            std::memcmp(p + 4, probe.data, len) != 0) {
          return false;
        }
        p += 4 + len;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

uint64_t JoinHashTable::FirstMatch(uint64_t ref, const DataChunk& keys,
                                   idx_t row, uint64_t hash) const {
  while (ref != kNullRef) {
    const uint8_t* stored = Resolve(ref);
    uint64_t stored_hash;
    std::memcpy(&stored_hash, stored + 8, 8);
    if (stored_hash == hash && MatchKeys(stored + kHeaderSize, keys, row)) {
      return ref;
    }
    std::memcpy(&ref, stored, 8);
  }
  return kNullRef;
}

uint64_t JoinHashTable::NextMatch(uint64_t ref, const DataChunk& keys,
                                  idx_t row, uint64_t hash) const {
  uint64_t next;
  std::memcpy(&next, Resolve(ref), 8);
  return FirstMatch(next, keys, row, hash);
}

void JoinHashTable::DecodePayload(uint64_t ref, DataChunk* out, idx_t out_row,
                                  idx_t first_column) const {
  const uint8_t* row = Resolve(ref);
  uint32_t key_bytes;
  std::memcpy(&key_bytes, row + 16, 4);
  payload_codec_.DecodeRow(row + kHeaderSize + key_bytes, out, out_row,
                           first_column);
}

}  // namespace mallard
