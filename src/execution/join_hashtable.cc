#include "mallard/execution/join_hashtable.h"

#include <algorithm>
#include <cstring>

#include "mallard/common/hash.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/vector/vector_hash.h"

namespace mallard {

JoinHashTable::JoinHashTable(std::vector<TypeId> key_types,
                             std::vector<TypeId> payload_types,
                             idx_t directory_size_hint)
    : key_types_(key_types),
      key_codec_(std::move(key_types)),
      payload_codec_(std::move(payload_types)),
      directory_size_hint_(directory_size_hint) {
  hash_scratch_.resize(kVectorSize);
}

void JoinHashTable::EnableSpilling(const ResourceGovernor* governor,
                                   uint64_t divisor, int radix_shift) {
  governor_ = governor;
  spill_divisor_ = std::max<uint64_t>(1, divisor);
  radix_shift_ = radix_shift;
  spill_enabled_ = true;
}

uint64_t JoinHashTable::SpillBudget() const {
  if (!spill_enabled_ || !governor_) return ~uint64_t(0);
  return std::max<uint64_t>(uint64_t(1) << 20,
                            governor_->EffectiveMemoryBudget() /
                                spill_divisor_);
}

Status JoinHashTable::Append(ExecutionContext* context, const DataChunk& keys,
                             const DataChunk& payload, idx_t count) {
  HashKeyColumns(keys, count, hash_scratch_.data());
  for (idx_t r = 0; r < count; r++) {
    bool has_null = false;
    for (idx_t c = 0; c < keys.ColumnCount(); c++) {
      if (!keys.column(c).validity().RowIsValid(r)) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;  // NULL keys never match any probe row
    row_scratch_.clear();
    row_scratch_.resize(kHeaderSize);
    uint64_t next = kNullRef;
    std::memcpy(row_scratch_.data(), &next, 8);
    std::memcpy(row_scratch_.data() + 8, &hash_scratch_[r], 8);
    key_codec_.EncodeRow(keys, r, &row_scratch_);
    uint32_t key_bytes = static_cast<uint32_t>(row_scratch_.size() -
                                               kHeaderSize);
    std::memcpy(row_scratch_.data() + 16, &key_bytes, 4);
    payload_codec_.EncodeRow(payload, r, &row_scratch_);
    MALLARD_RETURN_NOT_OK(
        AppendRow(context, PartitionOf(hash_scratch_[r], radix_shift_),
                  row_scratch_.data(), row_scratch_.size()));
  }
  if (spill_enabled_) return MaybeSpill();
  return Status::OK();
}

Status JoinHashTable::AppendRow(ExecutionContext* context, idx_t partition,
                                const uint8_t* row, uint64_t size) {
  buffers_ = context->buffers;
  Partition& part = partitions_[partition];
  bool need_segment =
      part.segments.empty() ||
      part.tail_used + size > part.segments.back().buffer->size();
  if (need_segment) {
    // Geometric growth capped at 1 MiB: a 16-way split of a small build
    // must not pay 16 full-size segments.
    uint64_t target =
        std::min(kMaxSegmentBytes, std::max(kMinSegmentBytes, part.bytes));
    MALLARD_ASSIGN_OR_RETURN(
        BufferHandle handle,
        buffers_->Allocate(std::max(target, size), /*spillable=*/true));
    Segment segment;
    segment.buffer = handle.buffer();
    segment.data = handle.data();
    segment.pin = std::move(handle);
    if (!part.resident && !part.segments.empty()) {
      // An unloaded partition keeps only its tail pinned.
      part.segments.back().pin.Release();
      part.segments.back().data = nullptr;
    }
    part.segments.push_back(std::move(segment));
    part.tail_used = 0;
  } else if (!part.segments.back().pin) {
    // Appending into an unloaded partition: re-pin just the tail (the
    // buffer manager reloads it if eviction already moved it to disk).
    Segment& tail = part.segments.back();
    MALLARD_ASSIGN_OR_RETURN(tail.pin, buffers_->Pin(tail.buffer));
    tail.data = tail.pin.data();
    tail.pin.MarkDirty();
  }
  Segment& tail = part.segments.back();
  std::memcpy(tail.data + part.tail_used, row, size);
  part.refs.push_back((static_cast<uint64_t>(partition)
                       << (kOffsetBits + kSegmentBits)) |
                      ((part.segments.size() - 1) << kOffsetBits) |
                      part.tail_used);
  part.tail_used += size;
  part.bytes += size;
  build_bytes_ += size;
  count_++;
  return Status::OK();
}

Status JoinHashTable::MaybeSpill() {
  uint64_t budget = SpillBudget();
  while (true) {
    uint64_t resident_bytes = 0;
    idx_t victim = kInvalidIndex;
    uint64_t victim_bytes = 0;
    for (idx_t p = 0; p < kPartitions; p++) {
      if (!partitions_[p].resident) continue;
      resident_bytes += partitions_[p].bytes;
      if (partitions_[p].bytes > victim_bytes) {
        victim_bytes = partitions_[p].bytes;
        victim = p;
      }
    }
    if (resident_bytes <= budget || victim == kInvalidIndex ||
        victim_bytes == 0) {
      break;
    }
    UnloadPartition(victim);
    spilled_any_ = true;
  }
  return Status::OK();
}

void JoinHashTable::UnloadPartition(idx_t p) {
  Partition& part = partitions_[p];
  for (Segment& segment : part.segments) {
    segment.pin.Release();
    segment.data = nullptr;
  }
  part.resident = false;
}

Status JoinHashTable::LoadPartition(idx_t p) {
  Partition& part = partitions_[p];
  for (Segment& segment : part.segments) {
    if (!segment.pin) {
      MALLARD_ASSIGN_OR_RETURN(segment.pin, buffers_->Pin(segment.buffer));
      segment.data = segment.pin.data();
    }
  }
  part.resident = true;
  return Status::OK();
}

void JoinHashTable::DropPartition(idx_t p) { partitions_[p] = Partition{}; }

void JoinHashTable::MergePartition(JoinHashTable&& other) {
  for (idx_t p = 0; p < kPartitions; p++) {
    Partition& mine = partitions_[p];
    Partition& theirs = other.partitions_[p];
    if (theirs.segments.empty()) continue;
    uint64_t segment_base = mine.segments.size();
    for (Segment& segment : theirs.segments) {
      mine.segments.push_back(std::move(segment));
    }
    mine.refs.reserve(mine.refs.size() + theirs.refs.size());
    for (uint64_t ref : theirs.refs) {
      uint64_t segment = ((ref >> kOffsetBits) & kSegmentMask) + segment_base;
      mine.refs.push_back((static_cast<uint64_t>(p)
                           << (kOffsetBits + kSegmentBits)) |
                          (segment << kOffsetBits) | (ref & kOffsetMask));
    }
    // Appends after a merge continue in the stolen tail segment.
    mine.tail_used = theirs.tail_used;
    mine.bytes += theirs.bytes;
    mine.resident = mine.resident && theirs.resident;
    theirs = Partition{};
  }
  count_ += other.count_;
  build_bytes_ += other.build_bytes_;
  spilled_any_ = spilled_any_ || other.spilled_any_;
  if (!buffers_) buffers_ = other.buffers_;
  other.count_ = 0;
  other.build_bytes_ = 0;
  other.spilled_any_ = false;
}

Status JoinHashTable::Finalize() {
  grace_ = spill_enabled_ && (spilled_any_ || build_bytes_ > SpillBudget());
  if (grace_) {
    // Grace hash join: no global directory. Release every pin so the
    // operator can process partitions one at a time under the budget.
    for (idx_t p = 0; p < kPartitions; p++) UnloadPartition(p);
    return Status::OK();
  }
  for (idx_t p = 0; p < kPartitions; p++) {
    MALLARD_RETURN_NOT_OK(LoadPartition(p));
  }
  idx_t capacity = directory_size_hint_
                       ? NextPowerOfTwo(directory_size_hint_)
                       : NextPowerOfTwo(std::max<idx_t>(1024, 2 * count_));
  directory_.assign(capacity, kNullRef);
  mask_ = capacity - 1;
  for (idx_t p = kPartitions; p > 0; p--) {
    InsertRefs(partitions_[p - 1].refs);
  }
  return Status::OK();
}

Status JoinHashTable::FinalizePartition(idx_t p) {
  Partition& part = partitions_[p];
  // Chain insertion writes next refs through the segment data; reloaded
  // segments must be re-marked dirty or a later clean eviction would
  // reuse the stale on-disk copy.
  for (Segment& segment : part.segments) {
    segment.pin.MarkDirty();
  }
  idx_t capacity =
      directory_size_hint_
          ? NextPowerOfTwo(directory_size_hint_)
          : NextPowerOfTwo(std::max<idx_t>(1024, 2 * part.refs.size()));
  directory_.assign(capacity, kNullRef);
  mask_ = capacity - 1;
  InsertRefs(part.refs);
  return Status::OK();
}

void JoinHashTable::InsertRefs(const std::vector<uint64_t>& refs) {
  // Head insertion reverses chain order, so inserting in reverse build
  // order leaves every chain in build order — join output then matches
  // the row-at-a-time implementation this table replaced. (Equal keys
  // hash equal, so they always land in the same partition; per-partition
  // insertion preserves their relative order.)
  for (idx_t i = refs.size(); i > 0; i--) {
    uint64_t ref = refs[i - 1];
    uint8_t* row = ResolveMutable(ref);
    uint64_t hash;
    std::memcpy(&hash, row + 8, 8);
    uint64_t slot = hash & mask_;
    std::memcpy(row, &directory_[slot], 8);  // next = old head
    directory_[slot] = ref;
  }
}

Status JoinHashTable::ScanPartition(idx_t p, ScanCursor* cursor,
                                    DataChunk* keys, DataChunk* payload,
                                    idx_t* count) const {
  const Partition& part = partitions_[p];
  keys->Reset();
  payload->Reset();
  idx_t n = 0;
  while (n < kVectorSize && cursor->ref_index < part.refs.size()) {
    uint64_t ref = part.refs[cursor->ref_index];
    idx_t segment = (ref >> kOffsetBits) & kSegmentMask;
    if (cursor->pinned_segment != segment) {
      cursor->pin.Release();
      MALLARD_ASSIGN_OR_RETURN(cursor->pin,
                               buffers_->Pin(part.segments[segment].buffer));
      cursor->data = cursor->pin.data();
      cursor->pinned_segment = segment;
    }
    const uint8_t* row = cursor->data + (ref & kOffsetMask);
    uint32_t key_bytes;
    std::memcpy(&key_bytes, row + 16, 4);
    key_codec_.DecodeRow(row + kHeaderSize, keys, n, 0);
    payload_codec_.DecodeRow(row + kHeaderSize + key_bytes, payload, n, 0);
    n++;
    cursor->ref_index++;
  }
  if (cursor->ref_index >= part.refs.size()) {
    cursor->pin.Release();
    cursor->data = nullptr;
  }
  keys->SetCardinality(n);
  payload->SetCardinality(n);
  *count = n;
  return Status::OK();
}

void JoinHashTable::ProbeHeads(const DataChunk& keys, idx_t count,
                               uint64_t* hashes, uint64_t* heads) const {
  HashKeyColumns(keys, count, hashes);
  for (idx_t r = 0; r < count; r++) {
    heads[r] = directory_[hashes[r] & mask_];
  }
  // Rows with a NULL key component never match.
  for (idx_t c = 0; c < keys.ColumnCount(); c++) {
    const ValidityMask& validity = keys.column(c).validity();
    if (validity.AllValid()) continue;
    for (idx_t r = 0; r < count; r++) {
      if (!validity.RowIsValid(r)) heads[r] = kNullRef;
    }
  }
}

bool JoinHashTable::MatchKeys(const uint8_t* stored, const DataChunk& keys,
                              idx_t row) const {
  const uint8_t* p = stored;
  for (idx_t c = 0; c < key_types_.size(); c++) {
    p++;  // validity byte; stored keys are never NULL
    const Vector& col = keys.column(c);
    switch (key_types_[c]) {
      case TypeId::kBoolean: {
        if (*reinterpret_cast<const int8_t*>(p) != col.data<int8_t>()[row]) {
          return false;
        }
        p += 1;
        break;
      }
      case TypeId::kInteger:
      case TypeId::kDate: {
        int32_t v;
        std::memcpy(&v, p, 4);
        if (v != col.data<int32_t>()[row]) return false;
        p += 4;
        break;
      }
      case TypeId::kBigInt:
      case TypeId::kTimestamp: {
        int64_t v;
        std::memcpy(&v, p, 8);
        if (v != col.data<int64_t>()[row]) return false;
        p += 8;
        break;
      }
      case TypeId::kDouble: {
        // Bit-pattern compare on normalized doubles: -0.0 == +0.0, and
        // NaN keys group bitwise (same behavior as the sort-key
        // encoding the row-at-a-time join used).
        double s, d = NormalizeDouble(col.data<double>()[row]);
        std::memcpy(&s, p, 8);
        s = NormalizeDouble(s);
        if (std::memcmp(&s, &d, 8) != 0) return false;
        p += 8;
        break;
      }
      case TypeId::kVarchar: {
        uint32_t len;
        std::memcpy(&len, p, 4);
        StringRef probe = col.StringAt(row);
        if (len != probe.size ||
            std::memcmp(p + 4, probe.data, len) != 0) {
          return false;
        }
        p += 4 + len;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

uint64_t JoinHashTable::FirstMatch(uint64_t ref, const DataChunk& keys,
                                   idx_t row, uint64_t hash) const {
  while (ref != kNullRef) {
    const uint8_t* stored = Resolve(ref);
    uint64_t stored_hash;
    std::memcpy(&stored_hash, stored + 8, 8);
    if (stored_hash == hash && MatchKeys(stored + kHeaderSize, keys, row)) {
      return ref;
    }
    std::memcpy(&ref, stored, 8);
  }
  return kNullRef;
}

uint64_t JoinHashTable::NextMatch(uint64_t ref, const DataChunk& keys,
                                  idx_t row, uint64_t hash) const {
  uint64_t next;
  std::memcpy(&next, Resolve(ref), 8);
  return FirstMatch(next, keys, row, hash);
}

void JoinHashTable::DecodePayload(uint64_t ref, DataChunk* out, idx_t out_row,
                                  idx_t first_column) const {
  const uint8_t* row = Resolve(ref);
  uint32_t key_bytes;
  std::memcpy(&key_bytes, row + 16, 4);
  payload_codec_.DecodeRow(row + kHeaderSize + key_bytes, out, out_row,
                           first_column);
}

}  // namespace mallard
