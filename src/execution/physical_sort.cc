#include "mallard/execution/physical_sort.h"

#include <algorithm>

namespace mallard {

PhysicalOrderBy::PhysicalOrderBy(std::vector<SortSpec> specs,
                                 std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(child->types()), specs_(std::move(specs)) {
  AddChild(std::move(child));
}

Status PhysicalOrderBy::GetChunk(ExecutionContext* context, DataChunk* out) {
  if (!sorted_) {
    sort_ = std::make_unique<ExternalSort>(child(0)->types(), specs_,
                                           context->buffers,
                                           context->governor);
    DataChunk chunk;
    chunk.Initialize(child(0)->types());
    while (true) {
      MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &chunk));
      if (chunk.size() == 0) break;
      MALLARD_RETURN_NOT_OK(sort_->Sink(chunk));
    }
    MALLARD_RETURN_NOT_OK(sort_->Finalize());
    sorted_ = true;
  }
  return sort_->GetChunk(out);
}

std::string PhysicalOrderBy::name() const {
  std::string result = "ORDER_BY(";
  for (size_t i = 0; i < specs_.size(); i++) {
    if (i > 0) result += ", ";
    result += "#" + std::to_string(specs_[i].column) +
              (specs_[i].ascending ? " ASC" : " DESC");
  }
  return result + ")";
}

PhysicalTopN::PhysicalTopN(std::vector<SortSpec> specs, idx_t limit,
                           idx_t offset,
                           std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(child->types()),
      specs_(std::move(specs)),
      limit_(limit),
      offset_(offset) {
  AddChild(std::move(child));
}

Status PhysicalTopN::GetChunk(ExecutionContext* context, DataChunk* out) {
  idx_t keep = limit_ + offset_;
  if (!computed_) {
    RowCodec codec(child(0)->types());
    DataChunk chunk;
    chunk.Initialize(child(0)->types());
    std::string key;
    // Max-heap on the key: the root is the worst row kept so far.
    auto cmp = [](const std::pair<std::string, std::vector<uint8_t>>& a,
                  const std::pair<std::string, std::vector<uint8_t>>& b) {
      return a.first < b.first;
    };
    while (true) {
      MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &chunk));
      if (chunk.size() == 0) break;
      for (idx_t r = 0; r < chunk.size(); r++) {
        EncodeSortKey(chunk, r, specs_, &key);
        if (heap_.size() >= keep && key >= heap_.front().first) continue;
        std::vector<uint8_t> row;
        codec.EncodeRow(chunk, r, &row);
        heap_.emplace_back(key, std::move(row));
        std::push_heap(heap_.begin(), heap_.end(), cmp);
        if (heap_.size() > keep) {
          std::pop_heap(heap_.begin(), heap_.end(), cmp);
          heap_.pop_back();
        }
      }
    }
    std::sort(heap_.begin(), heap_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (idx_t i = offset_; i < heap_.size(); i++) {
      sorted_rows_.push_back(std::move(heap_[i].second));
    }
    heap_.clear();
    computed_ = true;
  }
  out->Reset();
  RowCodec codec(types_);
  idx_t produced = 0;
  while (position_ < sorted_rows_.size() && produced < kVectorSize) {
    codec.DecodeRow(sorted_rows_[position_].data(), out, produced);
    position_++;
    produced++;
  }
  out->SetCardinality(produced);
  return Status::OK();
}

std::string PhysicalTopN::name() const {
  return "TOP_N(" + std::to_string(limit_) + ")";
}

}  // namespace mallard
