#include "mallard/execution/row_codec.h"

#include <cstring>

namespace mallard {

void RowCodec::EncodeRow(const DataChunk& chunk, idx_t row,
                         std::vector<uint8_t>* out) const {
  for (idx_t c = 0; c < types_.size(); c++) {
    const Vector& col = chunk.column(c);
    bool valid = col.validity().RowIsValid(row);
    out->push_back(valid ? 1 : 0);
    if (!valid) continue;
    if (types_[c] == TypeId::kVarchar) {
      StringRef s = col.StringAt(row);
      uint32_t len = s.size;
      size_t pos = out->size();
      out->resize(pos + 4 + len);
      std::memcpy(out->data() + pos, &len, 4);
      std::memcpy(out->data() + pos + 4, s.data, len);
    } else {
      idx_t width = TypeSize(types_[c]);
      size_t pos = out->size();
      out->resize(pos + width);
      std::memcpy(out->data() + pos, col.raw_data() + row * width, width);
    }
  }
}

size_t RowCodec::DecodeRow(const uint8_t* data, DataChunk* out,
                           idx_t out_row, idx_t first_column) const {
  size_t pos = 0;
  for (idx_t c = 0; c < types_.size(); c++) {
    Vector& col = out->column(first_column + c);
    bool valid = data[pos++] != 0;
    if (!valid) {
      col.validity().SetInvalid(out_row);
      continue;
    }
    col.validity().SetValid(out_row);
    if (types_[c] == TypeId::kVarchar) {
      uint32_t len;
      std::memcpy(&len, data + pos, 4);
      pos += 4;
      col.SetString(out_row, reinterpret_cast<const char*>(data + pos), len);
      pos += len;
    } else {
      idx_t width = TypeSize(types_[c]);
      std::memcpy(col.raw_data() + out_row * width, data + pos, width);
      pos += width;
    }
  }
  return pos;
}

namespace {

void AppendBigEndian(uint64_t value, int bytes, std::string* key) {
  for (int b = bytes - 1; b >= 0; b--) {
    key->push_back(static_cast<char>((value >> (b * 8)) & 0xFF));
  }
}

// Encodes one non-null value order-preservingly.
void EncodeValueBytes(const Vector& col, idx_t row, std::string* key) {
  switch (col.type()) {
    case TypeId::kBoolean:
      key->push_back(col.data<int8_t>()[row] ? 1 : 0);
      break;
    case TypeId::kInteger:
    case TypeId::kDate: {
      uint32_t bits = static_cast<uint32_t>(col.data<int32_t>()[row]);
      bits ^= 0x80000000u;  // flip sign for unsigned order
      AppendBigEndian(bits, 4, key);
      break;
    }
    case TypeId::kBigInt:
    case TypeId::kTimestamp: {
      uint64_t bits = static_cast<uint64_t>(col.data<int64_t>()[row]);
      bits ^= 0x8000000000000000ull;
      AppendBigEndian(bits, 8, key);
      break;
    }
    case TypeId::kDouble: {
      double d = col.data<double>()[row];
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      // IEEE total-order transform: positive -> flip sign bit,
      // negative -> flip all bits.
      if (bits & 0x8000000000000000ull) {
        bits = ~bits;
      } else {
        bits ^= 0x8000000000000000ull;
      }
      AppendBigEndian(bits, 8, key);
      break;
    }
    case TypeId::kVarchar: {
      StringRef s = col.StringAt(row);
      // Escape embedded zeros (0x00 -> 0x00 0xFF) and terminate with
      // 0x00 0x00 so shorter strings order before their extensions.
      for (uint32_t i = 0; i < s.size; i++) {
        key->push_back(s.data[i]);
        if (s.data[i] == '\0') key->push_back('\xFF');
      }
      key->push_back('\0');
      key->push_back('\0');
      break;
    }
    default:
      break;
  }
}

}  // namespace

void EncodeSortKey(const DataChunk& chunk, idx_t row,
                   const std::vector<SortSpec>& specs, std::string* key) {
  key->clear();
  for (const auto& spec : specs) {
    const Vector& col = chunk.column(spec.column);
    bool valid = col.validity().RowIsValid(row);
    size_t start = key->size();
    if (!valid) {
      key->push_back(spec.nulls_first ? '\x00' : '\xFF');
    } else {
      key->push_back(spec.nulls_first ? '\x01' : '\x01');
      EncodeValueBytes(col, row, key);
    }
    if (!spec.ascending) {
      for (size_t i = start; i < key->size(); i++) {
        (*key)[i] = static_cast<char>(~(*key)[i]);
      }
    }
  }
}

}  // namespace mallard
