#include "mallard/execution/physical_dml.h"

#include "mallard/storage/wal.h"
#include "mallard/transaction/transaction.h"

namespace mallard {

namespace {
const std::vector<TypeId> kCountResult = {TypeId::kBigInt};
}

// ---------------------------------------------------------------------------
// PhysicalInsert
// ---------------------------------------------------------------------------

PhysicalInsert::PhysicalInsert(DataTable* table,
                               std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(kCountResult), table_(table) {
  AddChild(std::move(child));
}

Status PhysicalInsert::GetChunk(ExecutionContext* context, DataChunk* out) {
  out->Reset();
  if (done_) return Status::OK();
  DataChunk chunk;
  chunk.Initialize(table_->ColumnTypes());
  int64_t inserted = 0;
  while (true) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &chunk));
    if (chunk.size() == 0) break;
    MALLARD_RETURN_NOT_OK(table_->Append(context->txn, chunk));
    context->txn->wal_records().push_back(
        wal_record::Append(table_->name(), chunk));
    inserted += chunk.size();
  }
  out->SetValue(0, 0, Value::BigInt(inserted));
  out->SetCardinality(1);
  done_ = true;
  return Status::OK();
}

std::string PhysicalInsert::name() const {
  return "INSERT(" + table_->name() + ")";
}

// ---------------------------------------------------------------------------
// PhysicalDelete
// ---------------------------------------------------------------------------

PhysicalDelete::PhysicalDelete(DataTable* table,
                               std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(kCountResult), table_(table) {
  AddChild(std::move(child));
}

Status PhysicalDelete::GetChunk(ExecutionContext* context, DataChunk* out) {
  out->Reset();
  if (done_) return Status::OK();
  DataChunk chunk;
  chunk.Initialize(child(0)->types());
  int64_t deleted = 0;
  while (true) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &chunk));
    if (chunk.size() == 0) break;
    const Vector& row_ids = chunk.column(0);
    MALLARD_ASSIGN_OR_RETURN(idx_t n,
                             table_->Delete(context->txn, row_ids,
                                            chunk.size()));
    context->txn->wal_records().push_back(wal_record::Delete(
        table_->name(), row_ids.data<int64_t>(), chunk.size()));
    deleted += n;
  }
  out->SetValue(0, 0, Value::BigInt(deleted));
  out->SetCardinality(1);
  done_ = true;
  return Status::OK();
}

std::string PhysicalDelete::name() const {
  return "DELETE(" + table_->name() + ")";
}

// ---------------------------------------------------------------------------
// PhysicalUpdate
// ---------------------------------------------------------------------------

PhysicalUpdate::PhysicalUpdate(DataTable* table,
                               std::vector<idx_t> column_indexes,
                               std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(kCountResult),
      table_(table),
      column_indexes_(std::move(column_indexes)) {
  AddChild(std::move(child));
}

Status PhysicalUpdate::GetChunk(ExecutionContext* context, DataChunk* out) {
  out->Reset();
  if (done_) return Status::OK();
  DataChunk chunk;
  chunk.Initialize(child(0)->types());
  std::vector<TypeId> value_types;
  for (idx_t c = 1; c < child(0)->types().size(); c++) {
    value_types.push_back(child(0)->types()[c]);
  }
  int64_t updated = 0;
  while (true) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &chunk));
    if (chunk.size() == 0) break;
    const Vector& row_ids = chunk.column(0);
    // Split off the value columns as their own chunk view.
    DataChunk values;
    values.Initialize(value_types);
    for (idx_t c = 0; c < value_types.size(); c++) {
      values.column(c).Reference(chunk.column(c + 1));
    }
    values.SetCardinality(chunk.size());
    MALLARD_RETURN_NOT_OK(table_->Update(context->txn, row_ids, chunk.size(),
                                         column_indexes_, values));
    context->txn->wal_records().push_back(
        wal_record::Update(table_->name(), column_indexes_,
                           row_ids.data<int64_t>(), chunk.size(), values));
    updated += chunk.size();
  }
  out->SetValue(0, 0, Value::BigInt(updated));
  out->SetCardinality(1);
  done_ = true;
  return Status::OK();
}

std::string PhysicalUpdate::name() const {
  return "UPDATE(" + table_->name() + ")";
}

}  // namespace mallard
