#include "mallard/execution/physical_operator.h"

namespace mallard {

std::string PhysicalOperator::ToString(int indent) const {
  std::string result(indent * 2, ' ');
  result += name();
  result += "\n";
  for (const auto& child : children_) {
    result += child->ToString(indent + 1);
  }
  return result;
}

}  // namespace mallard
