#include "mallard/execution/aggregate_hashtable.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "mallard/common/hash.h"
#include "mallard/governor/resource_governor.h"
#include "mallard/vector/vector_hash.h"

namespace mallard {

AggregateHashTable::AggregateHashTable(std::vector<TypeId> group_types,
                                       idx_t aggregate_count,
                                       idx_t initial_capacity)
    : group_types_(std::move(group_types)),
      aggregate_count_(aggregate_count) {
  idx_t capacity = NextPowerOfTwo(std::max<idx_t>(2, initial_capacity));
  entries_.assign(capacity, Entry{0, kInvalidIndex});
  mask_ = capacity - 1;
  hash_scratch_.resize(kVectorSize);
}

AggregateHashTable::AggregateHashTable(
    std::vector<TypeId> group_types,
    const std::vector<BoundAggregate>& aggregates, idx_t initial_capacity)
    : AggregateHashTable(std::move(group_types), aggregates.size(),
                         initial_capacity) {
  layout_ = AggStateLayout::Plan(aggregates);
}

void AggregateHashTable::Resize(idx_t new_capacity) {
  std::vector<Entry> old = std::move(entries_);
  entries_.assign(new_capacity, Entry{0, kInvalidIndex});
  mask_ = new_capacity - 1;
  for (const Entry& e : old) {
    if (e.group == kInvalidIndex) continue;
    uint64_t slot = e.hash & mask_;
    while (entries_[slot].group != kInvalidIndex) slot = (slot + 1) & mask_;
    entries_[slot] = e;
  }
}

void AggregateHashTable::EnsureCapacity(idx_t incoming) {
  // Keep load factor under 50% even if every incoming row is a new
  // group, so the probe loop below never needs a mid-batch resize.
  idx_t needed = (group_count_ + incoming) * 2;
  if (needed > entries_.size()) {
    Resize(NextPowerOfTwo(needed));
  }
}

bool AggregateHashTable::GroupEquals(idx_t group, const DataChunk& groups,
                                     idx_t row) const {
  const DataChunk& chunk = *group_chunks_[group / kVectorSize];
  idx_t stored_row = group % kVectorSize;
  for (idx_t c = 0; c < group_types_.size(); c++) {
    const Vector& stored = chunk.column(c);
    const Vector& probe = groups.column(c);
    bool stored_valid = stored.validity().RowIsValid(stored_row);
    bool probe_valid = probe.validity().RowIsValid(row);
    if (stored_valid != probe_valid) return false;
    if (!stored_valid) continue;  // NULL = NULL for grouping
    switch (group_types_[c]) {
      case TypeId::kBoolean:
        if (stored.data<int8_t>()[stored_row] != probe.data<int8_t>()[row]) {
          return false;
        }
        break;
      case TypeId::kInteger:
      case TypeId::kDate:
        if (stored.data<int32_t>()[stored_row] !=
            probe.data<int32_t>()[row]) {
          return false;
        }
        break;
      case TypeId::kBigInt:
      case TypeId::kTimestamp:
        if (stored.data<int64_t>()[stored_row] !=
            probe.data<int64_t>()[row]) {
          return false;
        }
        break;
      case TypeId::kDouble: {
        // Normalized bit-pattern compare: -0.0 == +0.0, NaN groups
        // with NaN (matches the old sort-key-encoding semantics).
        double s = NormalizeDouble(stored.data<double>()[stored_row]);
        double p = NormalizeDouble(probe.data<double>()[row]);
        if (std::memcmp(&s, &p, 8) != 0) return false;
        break;
      }
      case TypeId::kVarchar: {
        // Stored group chunks are always flat; the probe side may be a
        // dictionary vector straight off a scan.
        StringRef a = stored.data<StringRef>()[stored_row];
        StringRef b = probe.StringAt(row);
        if (!(a == b)) return false;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

idx_t AggregateHashTable::AppendGroup(const DataChunk& groups, idx_t row,
                                      uint64_t hash) {
  idx_t local = group_count_ % kVectorSize;
  if (local == 0) {
    auto chunk = std::make_unique<DataChunk>();
    chunk->Initialize(group_types_);
    group_chunks_.push_back(std::move(chunk));
  }
  DataChunk& chunk = *group_chunks_.back();
  for (idx_t c = 0; c < group_types_.size(); c++) {
    chunk.column(c).CopyFrom(groups.column(c), 1, row, local);
  }
  chunk.SetCardinality(local + 1);
  group_hashes_.push_back(hash);
  if (layout_.compact()) {
    // New rows are value-initialized to zero — the initial state of
    // every compact slot.
    state_rows_.resize(state_rows_.size() + layout_.row_size());
  } else {
    states_.resize(states_.size() + aggregate_count_);
  }
  // Spill accounting: retained hash + directory share (two 16-byte
  // entries at the <=50% load factor) + state + key payload.
  uint64_t group_bytes = 8 + 2 * sizeof(Entry);
  group_bytes += layout_.compact() ? layout_.row_size()
                                   : aggregate_count_ * sizeof(AggState);
  for (idx_t c = 0; c < group_types_.size(); c++) {
    switch (group_types_[c]) {
      case TypeId::kBoolean:
        group_bytes += 1;
        break;
      case TypeId::kInteger:
      case TypeId::kDate:
        group_bytes += 4;
        break;
      case TypeId::kVarchar:
        group_bytes += sizeof(StringRef);
        if (groups.column(c).validity().RowIsValid(row)) {
          group_bytes += groups.column(c).StringAt(row).size;
        }
        break;
      default:
        group_bytes += 8;
        break;
    }
  }
  approx_bytes_ += group_bytes;
  return group_count_++;
}

void AggregateHashTable::Reset(idx_t initial_capacity) {
  idx_t capacity = NextPowerOfTwo(std::max<idx_t>(2, initial_capacity));
  entries_.assign(capacity, Entry{0, kInvalidIndex});
  mask_ = capacity - 1;
  group_count_ = 0;
  group_chunks_.clear();
  group_hashes_.clear();
  states_.clear();
  state_rows_.clear();
  approx_bytes_ = 0;
}

void AggregateHashTable::MergeRows(const DataChunk& keys, idx_t count,
                                   const uint64_t* hashes,
                                   const uint8_t* state_rows) {
  assert(layout_.compact());
  merge_ids_.resize(kVectorSize);
  EnsureCapacity(count);
  for (idx_t r = 0; r < count; r++) {
    merge_ids_[r] = FindOrCreateOne(keys, r, hashes[r]);
  }
  layout_.Combine(state_rows, 0, count, merge_ids_.data(),
                  state_rows_.data());
}

idx_t AggregateHashTable::FindOrCreateOne(const DataChunk& groups, idx_t row,
                                          uint64_t hash) {
  uint64_t slot = hash & mask_;
  while (true) {
    Entry& e = entries_[slot];
    if (e.group == kInvalidIndex) {
      e.hash = hash;
      e.group = AppendGroup(groups, row, hash);
      return e.group;
    }
    if (e.hash == hash && GroupEquals(e.group, groups, row)) {
      return e.group;
    }
    slot = (slot + 1) & mask_;
  }
}

void AggregateHashTable::FindOrCreateGroups(const DataChunk& groups,
                                            idx_t count, idx_t* group_ids) {
  EnsureCapacity(count);
  HashKeyColumns(groups, count, hash_scratch_.data());
  for (idx_t r = 0; r < count; r++) {
    group_ids[r] = FindOrCreateOne(groups, r, hash_scratch_[r]);
  }
}

void AggregateHashTable::FindOrCreateGroupsSel(const DataChunk& groups,
                                               const uint32_t* sel,
                                               idx_t count,
                                               const uint64_t* hashes,
                                               idx_t* group_ids) {
  EnsureCapacity(count);
  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel[i];
    group_ids[i] = FindOrCreateOne(groups, r, hashes[r]);
  }
}

void AggregateHashTable::UpdateStates(const BoundAggregate& aggregate,
                                      idx_t agg_index, const Vector* arg,
                                      idx_t count, const idx_t* group_ids,
                                      const uint32_t* sel) {
  if (layout_.compact()) {
    layout_.Update(agg_index, arg, count, group_ids, sel,
                   state_rows_.data());
    return;
  }
  AggState* states = states_.data() + agg_index;
  const idx_t stride = aggregate_count_;
  auto state_at = [&](idx_t i) -> AggState* {
    return states + group_ids[i] * stride;
  };
  auto row_at = [&](idx_t i) -> idx_t { return sel ? sel[i] : i; };
  if (aggregate.type == AggType::kCountStar) {
    for (idx_t i = 0; i < count; i++) state_at(i)->count++;
    return;
  }
  const ValidityMask& validity = arg->validity();
  switch (aggregate.type) {
    case AggType::kCount:
      for (idx_t i = 0; i < count; i++) {
        if (validity.RowIsValid(row_at(i))) state_at(i)->count++;
      }
      return;
    case AggType::kSum:
    case AggType::kAvg:
      switch (arg->type()) {
        case TypeId::kInteger: {
          const int32_t* data = arg->data<int32_t>();
          for (idx_t i = 0; i < count; i++) {
            idx_t r = row_at(i);
            if (!validity.RowIsValid(r)) continue;
            AggState* s = state_at(i);
            s->count++;
            s->isum += data[r];
            s->dsum += data[r];
            s->seen = true;
          }
          return;
        }
        case TypeId::kBigInt: {
          const int64_t* data = arg->data<int64_t>();
          for (idx_t i = 0; i < count; i++) {
            idx_t r = row_at(i);
            if (!validity.RowIsValid(r)) continue;
            AggState* s = state_at(i);
            s->count++;
            s->isum += data[r];
            s->dsum += static_cast<double>(data[r]);
            s->seen = true;
          }
          return;
        }
        case TypeId::kDouble: {
          const double* data = arg->data<double>();
          for (idx_t i = 0; i < count; i++) {
            idx_t r = row_at(i);
            if (!validity.RowIsValid(r)) continue;
            AggState* s = state_at(i);
            s->count++;
            s->dsum += data[r];
            s->seen = true;
          }
          return;
        }
        default:
          break;
      }
      break;
    case AggType::kMin:
    case AggType::kMax: {
      const bool is_min = aggregate.type == AggType::kMin;
      // Typed comparisons on the raw arrays; a Value is boxed only when
      // the running extreme actually improves.
      switch (arg->type()) {
        case TypeId::kInteger: {
          const int32_t* data = arg->data<int32_t>();
          for (idx_t i = 0; i < count; i++) {
            idx_t r = row_at(i);
            if (!validity.RowIsValid(r)) continue;
            AggState* s = state_at(i);
            int32_t v = data[r];
            if (!s->seen || (is_min ? v < s->extreme.GetInteger()
                                    : v > s->extreme.GetInteger())) {
              s->extreme = Value::Integer(v);
              s->seen = true;
            }
          }
          return;
        }
        case TypeId::kDate: {
          const int32_t* data = arg->data<int32_t>();
          for (idx_t i = 0; i < count; i++) {
            idx_t r = row_at(i);
            if (!validity.RowIsValid(r)) continue;
            AggState* s = state_at(i);
            int32_t v = data[r];
            if (!s->seen || (is_min ? v < s->extreme.GetDate()
                                    : v > s->extreme.GetDate())) {
              s->extreme = Value::Date(v);
              s->seen = true;
            }
          }
          return;
        }
        case TypeId::kBigInt: {
          const int64_t* data = arg->data<int64_t>();
          for (idx_t i = 0; i < count; i++) {
            idx_t r = row_at(i);
            if (!validity.RowIsValid(r)) continue;
            AggState* s = state_at(i);
            int64_t v = data[r];
            if (!s->seen || (is_min ? v < s->extreme.GetBigInt()
                                    : v > s->extreme.GetBigInt())) {
              s->extreme = Value::BigInt(v);
              s->seen = true;
            }
          }
          return;
        }
        case TypeId::kTimestamp: {
          const int64_t* data = arg->data<int64_t>();
          for (idx_t i = 0; i < count; i++) {
            idx_t r = row_at(i);
            if (!validity.RowIsValid(r)) continue;
            AggState* s = state_at(i);
            int64_t v = data[r];
            if (!s->seen || (is_min ? v < s->extreme.GetTimestamp()
                                    : v > s->extreme.GetTimestamp())) {
              s->extreme = Value::Timestamp(v);
              s->seen = true;
            }
          }
          return;
        }
        case TypeId::kDouble: {
          const double* data = arg->data<double>();
          for (idx_t i = 0; i < count; i++) {
            idx_t r = row_at(i);
            if (!validity.RowIsValid(r)) continue;
            AggState* s = state_at(i);
            double v = data[r];
            if (!s->seen || (is_min ? v < s->extreme.GetDouble()
                                    : v > s->extreme.GetDouble())) {
              s->extreme = Value::Double(v);
              s->seen = true;
            }
          }
          return;
        }
        case TypeId::kVarchar: {
          for (idx_t i = 0; i < count; i++) {
            idx_t r = row_at(i);
            if (!validity.RowIsValid(r)) continue;
            AggState* s = state_at(i);
            StringRef v = arg->StringAt(r);
            bool better = !s->seen;
            if (!better) {
              const std::string& cur = s->extreme.GetString();
              StringRef cur_ref(cur.data(),
                                static_cast<uint32_t>(cur.size()));
              better = is_min ? v < cur_ref : cur_ref < v;
            }
            if (better) {
              s->extreme = Value::Varchar(v.ToString());
              s->seen = true;
            }
          }
          return;
        }
        default:
          break;
      }
      break;
    }
    default:
      break;
  }
  // Fallback for type combinations without a dedicated kernel.
  for (idx_t i = 0; i < count; i++) {
    AggregateFunction::Update(aggregate.type, arg, row_at(i), state_at(i));
  }
}

void AggregateHashTable::Merge(const AggregateHashTable& other,
                               const std::vector<BoundAggregate>& aggregates) {
  assert(layout_.compact() == other.layout_.compact());
  merge_ids_.resize(kVectorSize);
  EnsureCapacity(other.group_count_);
  for (idx_t base = 0; base < other.group_count_; base += kVectorSize) {
    idx_t count = std::min<idx_t>(kVectorSize, other.group_count_ - base);
    const DataChunk& keys = *other.group_chunks_[base / kVectorSize];
    // Insert with the donor's retained hashes — the merge pass never
    // re-hashes group keys.
    for (idx_t r = 0; r < count; r++) {
      merge_ids_[r] =
          FindOrCreateOne(keys, r, other.group_hashes_[base + r]);
    }
    if (layout_.compact()) {
      layout_.Combine(other.state_rows_.data(), base, count,
                      merge_ids_.data(), state_rows_.data());
      continue;
    }
    for (idx_t r = 0; r < count; r++) {
      const AggState* src =
          other.states_.data() + (base + r) * aggregate_count_;
      AggState* dst = states_.data() + merge_ids_[r] * aggregate_count_;
      for (idx_t a = 0; a < aggregate_count_; a++) {
        AggregateFunction::Combine(aggregates[a].type, src[a], &dst[a]);
      }
    }
  }
}

Value AggregateHashTable::FinalizeState(idx_t group_id, idx_t agg_index,
                                        const BoundAggregate& aggregate) const {
  if (layout_.compact()) {
    return layout_.Finalize(
        agg_index, state_rows_.data() + group_id * layout_.row_size());
  }
  return AggregateFunction::Finalize(aggregate.type, aggregate.return_type,
                                     State(group_id, agg_index));
}

void AggregateHashTable::EmitKeys(idx_t start, idx_t count,
                                  DataChunk* out) const {
  assert(start % kVectorSize == 0);
  assert(count <= kVectorSize);
  const DataChunk& chunk = *group_chunks_[start / kVectorSize];
  for (idx_t c = 0; c < group_types_.size(); c++) {
    out->column(c).CopyFrom(chunk.column(c), count, 0, 0);
  }
}

// ---------------------------------------------------------------------------
// RadixPartitionedAggregateTable
// ---------------------------------------------------------------------------

RadixPartitionedAggregateTable::RadixPartitionedAggregateTable(
    std::vector<TypeId> group_types,
    const std::vector<BoundAggregate>& aggregates, bool partitioned) {
  idx_t partitions = partitioned ? kPartitions : 1;
  for (idx_t p = 0; p < partitions; p++) {
    partitions_.push_back(std::make_unique<AggregateHashTable>(
        group_types, aggregates,
        // Thread-local partitions start small: groups spread over 16
        // tables, and most queries have few groups.
        partitioned ? 64 : 1024));
  }
  hashes_.resize(kVectorSize);
  if (partitioned) {
    part_sel_.resize(kPartitions * kVectorSize);
    part_ids_.resize(kPartitions * kVectorSize);
  } else {
    ids_.resize(kVectorSize);
  }
  group_types_ = std::move(group_types);
}

idx_t RadixPartitionedAggregateTable::GroupCount() const {
  idx_t total = 0;
  for (const auto& p : partitions_) total += p->GroupCount();
  return total;
}

void RadixPartitionedAggregateTable::FindOrCreateGroups(
    const DataChunk& groups, idx_t count) {
  if (partitions_.size() == 1) {
    // Unpartitioned fast path — identical to the classic serial sink.
    partitions_[0]->FindOrCreateGroups(groups, count, ids_.data());
    return;
  }
  HashKeyColumns(groups, count, hashes_.data());
  std::memset(part_count_, 0, sizeof(part_count_));
  for (idx_t r = 0; r < count; r++) {
    idx_t p = PartitionOf(hashes_[r]);
    part_sel_[p * kVectorSize + part_count_[p]++] =
        static_cast<uint32_t>(r);
  }
  for (idx_t p = 0; p < kPartitions; p++) {
    if (part_count_[p] == 0) continue;
    partitions_[p]->FindOrCreateGroupsSel(
        groups, part_sel_.data() + p * kVectorSize, part_count_[p],
        hashes_.data(), part_ids_.data() + p * kVectorSize);
  }
}

void RadixPartitionedAggregateTable::UpdateStates(
    const BoundAggregate& aggregate, idx_t agg_index, const Vector* arg,
    idx_t count) {
  if (partitions_.size() == 1) {
    partitions_[0]->UpdateStates(aggregate, agg_index, arg, count,
                                 ids_.data());
    return;
  }
  (void)count;
  for (idx_t p = 0; p < kPartitions; p++) {
    if (part_count_[p] == 0) continue;
    partitions_[p]->UpdateStates(aggregate, agg_index, arg, part_count_[p],
                                 part_ids_.data() + p * kVectorSize,
                                 part_sel_.data() + p * kVectorSize);
  }
}

// -- Out-of-core aggregation ------------------------------------------------

void RadixPartitionedAggregateTable::EnableSpilling(
    const ResourceGovernor* governor, BufferManager* buffers,
    uint64_t divisor, const std::vector<BoundAggregate>* aggregates) {
  // The AggState fallback (MIN/MAX over VARCHAR) has no fixed-width
  // serialization; those queries stay fully in memory.
  if (!partitions_[0]->CompactLayout()) return;
  governor_ = governor;
  buffers_ = buffers;
  spill_divisor_ = std::max<uint64_t>(1, divisor);
  spill_aggregates_ = aggregates;
  key_codec_ = std::make_unique<RowCodec>(group_types_);
}

uint64_t RadixPartitionedAggregateTable::SpillBudget() const {
  // Re-read every time: the governor's budget is reactive.
  uint64_t effective = governor_->EffectiveMemoryBudget();
  return std::max<uint64_t>(uint64_t(1) << 20, effective / spill_divisor_);
}

uint64_t RadixPartitionedAggregateTable::EmitBudget() const {
  return std::max<uint64_t>(uint64_t(1) << 20, SpillBudget() / 2);
}

Status RadixPartitionedAggregateTable::SerializeTable(
    AggregateHashTable* table, int shift,
    std::array<std::unique_ptr<SpillRowStore>, kPartitions>* sinks) {
  const idx_t row_size = table->layout().row_size();
  // Scratch is local, not a member: MaybeSpillPartition serializes
  // distinct partitions concurrently during the parallel merge.
  std::vector<uint8_t> scratch;
  const idx_t count = table->GroupCount();
  for (idx_t g = 0; g < count; g++) {
    uint64_t hash = table->GroupHash(g);
    scratch.clear();
    scratch.resize(8 + row_size);
    std::memcpy(scratch.data(), &hash, 8);
    std::memcpy(scratch.data() + 8, table->StateRow(g), row_size);
    key_codec_->EncodeRow(table->GroupChunk(g / kVectorSize),
                          g % kVectorSize, &scratch);
    idx_t dest = PartitionOfShift(hash, shift);
    auto& sink = (*sinks)[dest];
    if (!sink) sink = std::make_unique<SpillRowStore>(buffers_);
    MALLARD_RETURN_NOT_OK(
        sink->Append(scratch.data(), static_cast<uint32_t>(scratch.size())));
  }
  for (auto& sink : *sinks) {
    if (sink) sink->FinishAppend();
  }
  return Status::OK();
}

Status RadixPartitionedAggregateTable::SpillPartitionTable(idx_t table_index) {
  AggregateHashTable* table = partitions_[table_index].get();
  if (table->GroupCount() == 0) return Status::OK();
  // Shift 0 routes by the top 4 hash bits — for a partitioned table this
  // lands every row in runs_[table_index]; for the single unpartitioned
  // table it scatters the groups to their radix homes.
  std::array<std::unique_ptr<SpillRowStore>, kPartitions> sinks;
  MALLARD_RETURN_NOT_OK(SerializeTable(table, 0, &sinks));
  for (idx_t p = 0; p < kPartitions; p++) {
    if (sinks[p]) runs_[p].push_back(std::move(sinks[p]));
  }
  table->Reset();
  spilled_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void RadixPartitionedAggregateTable::UpgradeToPartitioned() {
  while (partitions_.size() < kPartitions) {
    partitions_.push_back(std::make_unique<AggregateHashTable>(
        group_types_, *spill_aggregates_, 64));
  }
  part_sel_.resize(kPartitions * kVectorSize);
  part_ids_.resize(kPartitions * kVectorSize);
}

Status RadixPartitionedAggregateTable::MaybeSpill() {
  if (!governor_ || !buffers_ || !spill_aggregates_) return Status::OK();
  uint64_t budget = SpillBudget();
  while (true) {
    uint64_t resident = 0;
    idx_t victim = kInvalidIndex;
    uint64_t victim_bytes = 0;
    for (idx_t p = 0; p < partitions_.size(); p++) {
      uint64_t bytes = partitions_[p]->ApproxBytes();
      resident += bytes;
      if (partitions_[p]->GroupCount() > 0 && bytes >= victim_bytes) {
        victim = p;
        victim_bytes = bytes;
      }
    }
    if (resident <= budget || victim == kInvalidIndex) break;
    MALLARD_RETURN_NOT_OK(SpillPartitionTable(victim));
    // The serial sink runs unpartitioned; the first spill scattered its
    // groups across all 16 runs, so give new groups radix homes too.
    if (partitions_.size() == 1) UpgradeToPartitioned();
  }
  return Status::OK();
}

Status RadixPartitionedAggregateTable::MaybeSpillPartition(idx_t p) {
  if (!governor_ || !buffers_ || !spill_aggregates_) return Status::OK();
  if (partitions_.size() != kPartitions) return Status::OK();
  if (partitions_[p]->ApproxBytes() <= SpillBudget() / kPartitions) {
    return Status::OK();
  }
  return SpillPartitionTable(p);
}

void RadixPartitionedAggregateTable::AdoptRuns(
    RadixPartitionedAggregateTable* other) {
  for (idx_t p = 0; p < kPartitions; p++) {
    for (auto& run : other->runs_[p]) {
      runs_[p].push_back(std::move(run));
    }
    other->runs_[p].clear();
  }
  if (other->Spilled()) spilled_.store(true, std::memory_order_relaxed);
}

Status RadixPartitionedAggregateTable::NextEmitTable(
    AggregateHashTable** out) {
  *out = nullptr;
  while (true) {
    // Drain the recursion stack before advancing to the next partition.
    if (!emit_jobs_.empty()) {
      EmitJob job = std::move(emit_jobs_.back());
      emit_jobs_.pop_back();
      bool produced = false;
      MALLARD_RETURN_NOT_OK(ProcessEmitJob(std::move(job), &produced));
      if (produced) {
        *out = emit_table_.get();
        return Status::OK();
      }
      continue;
    }
    if (emit_next_partition_ >= kPartitions) return Status::OK();
    idx_t p = emit_next_partition_++;
    AggregateHashTable* resident =
        p < partitions_.size() ? partitions_[p].get() : nullptr;
    if (!runs_[p].empty()) {
      // Externalize the resident remainder so one merge job covers the
      // whole partition — a group may live in any subset of the runs.
      if (resident && resident->GroupCount() > 0) {
        MALLARD_RETURN_NOT_OK(SpillPartitionTable(p));
      }
      EmitJob job;
      job.runs = std::move(runs_[p]);
      runs_[p].clear();
      emit_jobs_.push_back(std::move(job));
      continue;
    }
    if (!resident || resident->GroupCount() == 0) continue;
    *out = resident;
    return Status::OK();
  }
}

Status RadixPartitionedAggregateTable::ProcessEmitJob(EmitJob job,
                                                      bool* produced) {
  *produced = false;
  if (!emit_table_) {
    emit_table_ = std::make_unique<AggregateHashTable>(
        group_types_, *spill_aggregates_, 1024);
  } else {
    emit_table_->Reset(1024);
  }
  const uint64_t budget = EmitBudget();
  const idx_t row_size = emit_table_->layout().row_size();
  const bool can_split = job.shift <= kMaxRadixShift;
  DataChunk keys;
  keys.Initialize(group_types_);
  std::vector<uint64_t> hashes(kVectorSize);
  std::vector<uint8_t> states(kVectorSize * row_size);
  idx_t batch = 0;
  auto flush = [&]() {
    if (batch == 0) return;
    keys.SetCardinality(batch);
    emit_table_->MergeRows(keys, batch, hashes.data(), states.data());
    keys.Reset();
    batch = 0;
  };
  bool splitting = false;
  std::array<std::unique_ptr<SpillRowStore>, kPartitions> subs;
  for (auto& run : job.runs) {
    SpillRowStore::Cursor cursor;
    const uint8_t* row = nullptr;
    uint32_t len = 0;
    while (true) {
      MALLARD_RETURN_NOT_OK(run->Next(&cursor, &row, &len));
      if (!row) break;
      uint64_t hash;
      std::memcpy(&hash, row, 8);
      if (splitting) {
        // Rows are already in run format — route them raw.
        idx_t dest = PartitionOfShift(hash, job.shift);
        auto& sink = subs[dest];
        if (!sink) sink = std::make_unique<SpillRowStore>(buffers_);
        MALLARD_RETURN_NOT_OK(sink->Append(row, len));
        continue;
      }
      hashes[batch] = hash;
      std::memcpy(states.data() + batch * row_size, row + 8, row_size);
      key_codec_->DecodeRow(row + 8 + row_size, &keys, batch);
      batch++;
      if (batch < kVectorSize) continue;
      flush();
      if (can_split && emit_table_->ApproxBytes() > budget) {
        // This hash slice still outgrows the emission budget: re-route
        // by the next 4 hash bits. The partial merge is serialized into
        // the sub-runs first — combining is associative, so groups
        // merged twice finalize identically.
        splitting = true;
        MALLARD_RETURN_NOT_OK(
            SerializeTable(emit_table_.get(), job.shift, &subs));
        emit_table_->Reset(1024);
      }
    }
  }
  if (!splitting) {
    flush();
    *produced = emit_table_->GroupCount() > 0;
    return Status::OK();
  }
  for (auto& sink : subs) {
    if (sink) sink->FinishAppend();
  }
  for (idx_t p = kPartitions; p-- > 0;) {
    if (!subs[p] || subs[p]->rows() == 0) continue;
    EmitJob sub;
    sub.runs.push_back(std::move(subs[p]));
    sub.shift = job.shift + static_cast<int>(kRadixBits);
    emit_jobs_.push_back(std::move(sub));
  }
  return Status::OK();
}

}  // namespace mallard
