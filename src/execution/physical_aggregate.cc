#include "mallard/execution/physical_aggregate.h"

#include <algorithm>

#include "mallard/expression/expression_executor.h"

namespace mallard {

// ---------------------------------------------------------------------------
// PhysicalUngroupedAggregate
// ---------------------------------------------------------------------------

namespace {
std::vector<TypeId> AggregateTypes(const std::vector<ExprPtr>& groups,
                                   const std::vector<BoundAggregate>& aggs) {
  std::vector<TypeId> types;
  for (const auto& g : groups) types.push_back(g->return_type());
  for (const auto& a : aggs) types.push_back(a.return_type);
  return types;
}
}  // namespace

PhysicalUngroupedAggregate::PhysicalUngroupedAggregate(
    std::vector<BoundAggregate> aggregates,
    std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(AggregateTypes({}, aggregates)),
      aggregates_(std::move(aggregates)) {
  child_chunk_.Initialize(child->types());
  AddChild(std::move(child));
}

Status PhysicalUngroupedAggregate::GetChunk(ExecutionContext* context,
                                            DataChunk* out) {
  out->Reset();
  if (done_) return Status::OK();
  std::vector<AggState> states(aggregates_.size());
  std::vector<Vector> arg_vectors;
  for (const auto& agg : aggregates_) {
    arg_vectors.emplace_back(agg.arg ? agg.arg->return_type()
                                     : TypeId::kBigInt);
  }
  while (true) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &child_chunk_));
    if (child_chunk_.size() == 0) break;
    for (idx_t a = 0; a < aggregates_.size(); a++) {
      const Vector* arg = nullptr;
      if (aggregates_[a].arg) {
        arg_vectors[a].Reset();
        MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
            *aggregates_[a].arg, child_chunk_, &arg_vectors[a]));
        arg = &arg_vectors[a];
      }
      for (idx_t r = 0; r < child_chunk_.size(); r++) {
        AggregateFunction::Update(aggregates_[a].type, arg, r, &states[a]);
      }
    }
  }
  for (idx_t a = 0; a < aggregates_.size(); a++) {
    out->SetValue(a, 0,
                  AggregateFunction::Finalize(aggregates_[a].type,
                                              aggregates_[a].return_type,
                                              states[a]));
  }
  out->SetCardinality(1);
  done_ = true;
  return Status::OK();
}

std::string PhysicalUngroupedAggregate::name() const {
  std::string result = "UNGROUPED_AGGREGATE(";
  for (size_t i = 0; i < aggregates_.size(); i++) {
    if (i > 0) result += ", ";
    result += AggregateFunction::Name(aggregates_[i].type);
  }
  return result + ")";
}

// ---------------------------------------------------------------------------
// PhysicalHashAggregate
// ---------------------------------------------------------------------------

PhysicalHashAggregate::PhysicalHashAggregate(
    std::vector<ExprPtr> groups, std::vector<BoundAggregate> aggregates,
    std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(AggregateTypes(groups, aggregates)),
      groups_(std::move(groups)),
      aggregates_(std::move(aggregates)) {
  child_chunk_.Initialize(child->types());
  std::vector<TypeId> group_types;
  for (const auto& g : groups_) group_types.push_back(g->return_type());
  group_chunk_.Initialize(group_types);
  AddChild(std::move(child));
}

Status PhysicalHashAggregate::Sink(ExecutionContext* context) {
  std::vector<TypeId> group_types;
  for (const auto& g : groups_) group_types.push_back(g->return_type());
  table_ = std::make_unique<AggregateHashTable>(std::move(group_types),
                                                aggregates_.size());
  group_ids_.resize(kVectorSize);
  std::vector<Vector> arg_vectors;
  for (const auto& agg : aggregates_) {
    arg_vectors.emplace_back(agg.arg ? agg.arg->return_type()
                                     : TypeId::kBigInt);
  }
  while (true) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &child_chunk_));
    if (child_chunk_.size() == 0) break;
    idx_t count = child_chunk_.size();
    group_chunk_.Reset();
    for (idx_t g = 0; g < groups_.size(); g++) {
      MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
          *groups_[g], child_chunk_, &group_chunk_.column(g)));
    }
    group_chunk_.SetCardinality(count);
    table_->FindOrCreateGroups(group_chunk_, count, group_ids_.data());
    // Evaluate aggregate arguments once per chunk, then fold each into
    // the per-group states in one typed batch.
    for (idx_t a = 0; a < aggregates_.size(); a++) {
      const Vector* arg = nullptr;
      if (aggregates_[a].arg) {
        arg_vectors[a].Reset();
        MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
            *aggregates_[a].arg, child_chunk_, &arg_vectors[a]));
        arg = &arg_vectors[a];
      }
      table_->UpdateStates(aggregates_[a], a, arg, count, group_ids_.data());
    }
  }
  return Status::OK();
}

Status PhysicalHashAggregate::GetChunk(ExecutionContext* context,
                                       DataChunk* out) {
  if (!sunk_) {
    MALLARD_RETURN_NOT_OK(Sink(context));
    sunk_ = true;
  }
  out->Reset();
  // Emission is aligned to the table's group-chunk boundaries, so each
  // output chunk is one plain columnar copy plus per-group finalizes.
  idx_t remaining = table_->GroupCount() - output_position_;
  idx_t produced = std::min<idx_t>(remaining, kVectorSize);
  if (produced > 0) {
    table_->EmitKeys(output_position_, produced, out);
    for (idx_t i = 0; i < produced; i++) {
      idx_t group = output_position_ + i;
      for (idx_t a = 0; a < aggregates_.size(); a++) {
        out->SetValue(groups_.size() + a, i,
                      AggregateFunction::Finalize(aggregates_[a].type,
                                                  aggregates_[a].return_type,
                                                  table_->State(group, a)));
      }
    }
    output_position_ += produced;
  }
  out->SetCardinality(produced);
  return Status::OK();
}

std::string PhysicalHashAggregate::name() const {
  std::string result = "HASH_GROUP_BY(";
  for (size_t i = 0; i < groups_.size(); i++) {
    if (i > 0) result += ", ";
    result += groups_[i]->ToString();
  }
  return result + ")";
}

}  // namespace mallard
