#include "mallard/execution/physical_aggregate.h"

#include <algorithm>
#include <chrono>

#include "mallard/expression/expression_executor.h"
#include "mallard/parallel/morsel.h"
#include "mallard/parallel/task_scheduler.h"

namespace mallard {

// ---------------------------------------------------------------------------
// PhysicalUngroupedAggregate
// ---------------------------------------------------------------------------

namespace {
std::vector<TypeId> AggregateTypes(const std::vector<ExprPtr>& groups,
                                   const std::vector<BoundAggregate>& aggs) {
  std::vector<TypeId> types;
  for (const auto& g : groups) types.push_back(g->return_type());
  for (const auto& a : aggs) types.push_back(a.return_type);
  return types;
}
}  // namespace

PhysicalUngroupedAggregate::PhysicalUngroupedAggregate(
    std::vector<BoundAggregate> aggregates,
    std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(AggregateTypes({}, aggregates)),
      aggregates_(std::move(aggregates)) {
  AddChild(std::move(child));
}

std::vector<ExprPtr> PhysicalUngroupedAggregate::CopyArgExprs() const {
  std::vector<ExprPtr> exprs;
  for (const auto& agg : aggregates_) {
    exprs.push_back(agg.arg ? agg.arg->Copy() : nullptr);
  }
  return exprs;
}

Status PhysicalUngroupedAggregate::AggregateSource(
    ExecutionContext* context, PhysicalOperator* source,
    const std::vector<ExprPtr>& arg_exprs, std::vector<AggState>* states) {
  DataChunk chunk;
  chunk.Initialize(source->types());
  std::vector<Vector> arg_vectors;
  for (const auto& agg : aggregates_) {
    arg_vectors.emplace_back(agg.arg ? agg.arg->return_type()
                                     : TypeId::kBigInt);
  }
  while (true) {
    MALLARD_RETURN_NOT_OK(source->GetChunk(context, &chunk));
    if (chunk.size() == 0) break;
    for (idx_t a = 0; a < aggregates_.size(); a++) {
      const Vector* arg = nullptr;
      if (arg_exprs[a]) {
        arg_vectors[a].Reset();
        MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
            *arg_exprs[a], chunk, &arg_vectors[a]));
        arg = &arg_vectors[a];
      }
      for (idx_t r = 0; r < chunk.size(); r++) {
        AggregateFunction::Update(aggregates_[a].type, arg, r,
                                  &(*states)[a]);
      }
    }
  }
  return Status::OK();
}

Status PhysicalUngroupedAggregate::ParallelAggregate(
    ExecutionContext* context, std::vector<AggState>* states, bool* done) {
  std::vector<std::vector<ExprPtr>> arg_exprs;
  std::vector<std::vector<AggState>> partials;
  MALLARD_RETURN_NOT_OK(parallel::RunMorselPipeline(
      context, child(0), done,
      [&](idx_t workers) {
        partials.assign(workers, std::vector<AggState>(aggregates_.size()));
        for (idx_t w = 0; w < workers; w++) {
          arg_exprs.push_back(CopyArgExprs());
        }
      },
      [&](int w, PhysicalOperator* scan) -> Status {
        return AggregateSource(context, scan, arg_exprs[w], &partials[w]);
      }));
  if (!*done) return Status::OK();
  for (const auto& partial : partials) {
    for (idx_t a = 0; a < aggregates_.size(); a++) {
      AggregateFunction::Combine(aggregates_[a].type, partial[a],
                                 &(*states)[a]);
    }
  }
  return Status::OK();
}

Status PhysicalUngroupedAggregate::GetChunk(ExecutionContext* context,
                                            DataChunk* out) {
  out->Reset();
  if (done_) return Status::OK();
  std::vector<AggState> states(aggregates_.size());
  bool parallel_done = false;
  MALLARD_RETURN_NOT_OK(ParallelAggregate(context, &states, &parallel_done));
  if (!parallel_done) {
    MALLARD_RETURN_NOT_OK(
        AggregateSource(context, child(0), CopyArgExprs(), &states));
  }
  for (idx_t a = 0; a < aggregates_.size(); a++) {
    out->SetValue(a, 0,
                  AggregateFunction::Finalize(aggregates_[a].type,
                                              aggregates_[a].return_type,
                                              states[a]));
  }
  out->SetCardinality(1);
  done_ = true;
  return Status::OK();
}

std::string PhysicalUngroupedAggregate::name() const {
  std::string result = "UNGROUPED_AGGREGATE(";
  for (size_t i = 0; i < aggregates_.size(); i++) {
    if (i > 0) result += ", ";
    result += AggregateFunction::Name(aggregates_[i].type);
  }
  return result + ")";
}

// ---------------------------------------------------------------------------
// PhysicalHashAggregate
// ---------------------------------------------------------------------------

PhysicalHashAggregate::PhysicalHashAggregate(
    std::vector<ExprPtr> groups, std::vector<BoundAggregate> aggregates,
    std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(AggregateTypes(groups, aggregates)),
      groups_(std::move(groups)),
      aggregates_(std::move(aggregates)) {
  AddChild(std::move(child));
}

std::vector<TypeId> PhysicalHashAggregate::GroupTypes() const {
  std::vector<TypeId> types;
  for (const auto& g : groups_) types.push_back(g->return_type());
  return types;
}

std::vector<ExprPtr> PhysicalHashAggregate::CopyGroupExprs() const {
  std::vector<ExprPtr> exprs;
  for (const auto& g : groups_) exprs.push_back(g->Copy());
  return exprs;
}

std::vector<ExprPtr> PhysicalHashAggregate::CopyArgExprs() const {
  std::vector<ExprPtr> exprs;
  for (const auto& a : aggregates_) {
    exprs.push_back(a.arg ? a.arg->Copy() : nullptr);
  }
  return exprs;
}

Status PhysicalHashAggregate::SinkSource(
    ExecutionContext* context, PhysicalOperator* source,
    const std::vector<ExprPtr>& group_exprs,
    const std::vector<ExprPtr>& arg_exprs,
    RadixPartitionedAggregateTable* table) {
  DataChunk chunk;
  chunk.Initialize(source->types());
  DataChunk group_chunk;
  group_chunk.Initialize(GroupTypes());
  std::vector<Vector> arg_vectors;
  for (const auto& agg : aggregates_) {
    arg_vectors.emplace_back(agg.arg ? agg.arg->return_type()
                                     : TypeId::kBigInt);
  }
  while (true) {
    MALLARD_RETURN_NOT_OK(source->GetChunk(context, &chunk));
    if (chunk.size() == 0) break;
    idx_t count = chunk.size();
    group_chunk.Reset();
    for (idx_t g = 0; g < group_exprs.size(); g++) {
      MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
          *group_exprs[g], chunk, &group_chunk.column(g)));
    }
    group_chunk.SetCardinality(count);
    table->FindOrCreateGroups(group_chunk, count);
    // Evaluate aggregate arguments once per chunk, then fold each into
    // the per-group states in one typed batch.
    for (idx_t a = 0; a < aggregates_.size(); a++) {
      const Vector* arg = nullptr;
      if (arg_exprs[a]) {
        arg_vectors[a].Reset();
        MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
            *arg_exprs[a], chunk, &arg_vectors[a]));
        arg = &arg_vectors[a];
      }
      table->UpdateStates(aggregates_[a], a, arg, count);
    }
    // The partition-sink budget consultation: externalizes the largest
    // partition whenever resident groups exceed the operator's share.
    MALLARD_RETURN_NOT_OK(table->MaybeSpill());
  }
  return Status::OK();
}

Status PhysicalHashAggregate::ParallelSink(ExecutionContext* context,
                                           bool* done) {
  std::vector<TypeId> group_types = GroupTypes();
  // Per-worker copies of the group and argument expressions, made up
  // front so workers never evaluate through shared trees.
  std::vector<std::vector<ExprPtr>> group_exprs;
  std::vector<std::vector<ExprPtr>> arg_exprs;
  std::vector<std::unique_ptr<RadixPartitionedAggregateTable>> partials;
  idx_t worker_count = 1;
  MALLARD_RETURN_NOT_OK(parallel::RunMorselPipeline(
      context, child(0), done,
      [&](idx_t workers) {
        worker_count = workers;
        partials.resize(workers);
        for (idx_t w = 0; w < workers; w++) {
          group_exprs.push_back(CopyGroupExprs());
          arg_exprs.push_back(CopyArgExprs());
        }
      },
      [&](int w, PhysicalOperator* scan) -> Status {
        auto local = std::make_unique<RadixPartitionedAggregateTable>(
            group_types, aggregates_, /*partitioned=*/true);
        if (context->governor && context->buffers) {
          // Workers split the operator's budget share evenly; each
          // spills its thread-local partitions independently.
          local->EnableSpilling(context->governor, context->buffers,
                                2 * worker_count, &aggregates_);
        }
        MALLARD_RETURN_NOT_OK(SinkSource(context, scan, group_exprs[w],
                                         arg_exprs[w], local.get()));
        partials[w] = std::move(local);
        return Status::OK();
      }));
  if (!*done) return Status::OK();
  // Per-partition merge: the first partial becomes the result and the
  // rest fold into it, partition by partition. All thread-local tables
  // radix-partition by the same hash bits, so the kPartitions merges
  // touch disjoint group sets and run in parallel under the governor's
  // budget (clamped-away workers leave null partials).
  auto merge_start = std::chrono::steady_clock::now();
  std::vector<RadixPartitionedAggregateTable*> rest;
  for (auto& partial : partials) {
    if (!partial) continue;
    if (!table_) {
      table_ = std::move(partial);
    } else {
      rest.push_back(partial.get());
    }
  }
  if (!table_) {
    table_ = std::make_unique<RadixPartitionedAggregateTable>(
        group_types, aggregates_, /*partitioned=*/true);
  }
  if (context->governor && context->buffers) {
    // One table survives the sink: it gets the full operator share back.
    table_->EnableSpilling(context->governor, context->buffers, 2,
                           &aggregates_);
  }
  if (!rest.empty()) {
    MALLARD_RETURN_NOT_OK(parallel::RunPartitionedTasks(
        context, table_->PartitionCount(), [&](idx_t p) -> Status {
          for (RadixPartitionedAggregateTable* other : rest) {
            table_->partition(p).Merge(other->partition(p), aggregates_);
          }
          // Partitions merge on different threads; each checks its own
          // 1/16 share of the budget (disjoint state, atomic flag).
          return table_->MaybeSpillPartition(p);
        }));
  }
  // Workers that spilled left runs behind; adopt them so emission merges
  // every run of a partition in one pass.
  for (RadixPartitionedAggregateTable* other : rest) {
    table_->AdoptRuns(other);
  }
  merge_ms_ += std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - merge_start)
                   .count();
  return Status::OK();
}

Status PhysicalHashAggregate::Sink(ExecutionContext* context) {
  auto sink_start = std::chrono::steady_clock::now();
  bool parallel_done = false;
  Status status = ParallelSink(context, &parallel_done);
  if (status.ok() && !parallel_done) {
    table_ = std::make_unique<RadixPartitionedAggregateTable>(
        GroupTypes(), aggregates_, /*partitioned=*/false);
    if (context->governor && context->buffers) {
      table_->EnableSpilling(context->governor, context->buffers, 2,
                             &aggregates_);
    }
    status = SinkSource(context, child(0), CopyGroupExprs(), CopyArgExprs(),
                        table_.get());
  }
  sink_ms_ += std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - sink_start)
                  .count() -
              merge_ms_;
  return status;
}

Status PhysicalHashAggregate::GetChunk(ExecutionContext* context,
                                       DataChunk* out) {
  if (!sunk_) {
    MALLARD_RETURN_NOT_OK(Sink(context));
    sunk_ = true;
  }
  out->Reset();
  // Emission pulls fully-merged tables from the radix front one at a
  // time (a resident partition, or a partition's spill runs merged back
  // in — see NextEmitTable); within a table it is aligned to group-chunk
  // boundaries, so each output chunk is one plain columnar copy plus
  // per-group finalizes. Chunks shrink at table tails (never to zero
  // before the last table).
  idx_t produced = 0;
  while (true) {
    if (!emit_current_) {
      MALLARD_RETURN_NOT_OK(table_->NextEmitTable(&emit_current_));
      emit_offset_ = 0;
      if (!emit_current_) break;  // every group emitted
    }
    idx_t remaining = emit_current_->GroupCount() - emit_offset_;
    if (remaining == 0) {
      emit_current_ = nullptr;
      continue;
    }
    produced = std::min<idx_t>(remaining, kVectorSize);
    emit_current_->EmitKeys(emit_offset_, produced, out);
    for (idx_t i = 0; i < produced; i++) {
      idx_t group = emit_offset_ + i;
      for (idx_t a = 0; a < aggregates_.size(); a++) {
        out->SetValue(groups_.size() + a, i,
                      emit_current_->FinalizeState(group, a, aggregates_[a]));
      }
    }
    emit_offset_ += produced;
    emitted_groups_ += produced;
    break;
  }
  out->SetCardinality(produced);
  return Status::OK();
}

std::string PhysicalHashAggregate::name() const {
  std::string result = "HASH_GROUP_BY(";
  for (size_t i = 0; i < groups_.size(); i++) {
    if (i > 0) result += ", ";
    result += groups_[i]->ToString();
  }
  return result + ")";
}

}  // namespace mallard
