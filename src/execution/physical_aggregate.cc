#include "mallard/execution/physical_aggregate.h"

#include "mallard/expression/expression_executor.h"

namespace mallard {

// ---------------------------------------------------------------------------
// PhysicalUngroupedAggregate
// ---------------------------------------------------------------------------

namespace {
std::vector<TypeId> AggregateTypes(const std::vector<ExprPtr>& groups,
                                   const std::vector<BoundAggregate>& aggs) {
  std::vector<TypeId> types;
  for (const auto& g : groups) types.push_back(g->return_type());
  for (const auto& a : aggs) types.push_back(a.return_type);
  return types;
}
}  // namespace

PhysicalUngroupedAggregate::PhysicalUngroupedAggregate(
    std::vector<BoundAggregate> aggregates,
    std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(AggregateTypes({}, aggregates)),
      aggregates_(std::move(aggregates)) {
  child_chunk_.Initialize(child->types());
  AddChild(std::move(child));
}

Status PhysicalUngroupedAggregate::GetChunk(ExecutionContext* context,
                                            DataChunk* out) {
  out->Reset();
  if (done_) return Status::OK();
  std::vector<AggState> states(aggregates_.size());
  std::vector<Vector> arg_vectors;
  for (const auto& agg : aggregates_) {
    arg_vectors.emplace_back(agg.arg ? agg.arg->return_type()
                                     : TypeId::kBigInt);
  }
  while (true) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &child_chunk_));
    if (child_chunk_.size() == 0) break;
    for (idx_t a = 0; a < aggregates_.size(); a++) {
      const Vector* arg = nullptr;
      if (aggregates_[a].arg) {
        arg_vectors[a].Reset();
        MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
            *aggregates_[a].arg, child_chunk_, &arg_vectors[a]));
        arg = &arg_vectors[a];
      }
      for (idx_t r = 0; r < child_chunk_.size(); r++) {
        AggregateFunction::Update(aggregates_[a].type, arg, r, &states[a]);
      }
    }
  }
  for (idx_t a = 0; a < aggregates_.size(); a++) {
    out->SetValue(a, 0,
                  AggregateFunction::Finalize(aggregates_[a].type,
                                              aggregates_[a].return_type,
                                              states[a]));
  }
  out->SetCardinality(1);
  done_ = true;
  return Status::OK();
}

std::string PhysicalUngroupedAggregate::name() const {
  std::string result = "UNGROUPED_AGGREGATE(";
  for (size_t i = 0; i < aggregates_.size(); i++) {
    if (i > 0) result += ", ";
    result += AggregateFunction::Name(aggregates_[i].type);
  }
  return result + ")";
}

// ---------------------------------------------------------------------------
// PhysicalHashAggregate
// ---------------------------------------------------------------------------

PhysicalHashAggregate::PhysicalHashAggregate(
    std::vector<ExprPtr> groups, std::vector<BoundAggregate> aggregates,
    std::unique_ptr<PhysicalOperator> child)
    : PhysicalOperator(AggregateTypes(groups, aggregates)),
      groups_(std::move(groups)),
      aggregates_(std::move(aggregates)) {
  child_chunk_.Initialize(child->types());
  std::vector<TypeId> group_types;
  for (const auto& g : groups_) group_types.push_back(g->return_type());
  group_chunk_.Initialize(group_types);
  AddChild(std::move(child));
}

Status PhysicalHashAggregate::Sink(ExecutionContext* context) {
  std::vector<SortSpec> key_specs;
  for (idx_t g = 0; g < groups_.size(); g++) {
    key_specs.push_back(SortSpec{g, true, true});
  }
  std::vector<Vector> arg_vectors;
  for (const auto& agg : aggregates_) {
    arg_vectors.emplace_back(agg.arg ? agg.arg->return_type()
                                     : TypeId::kBigInt);
  }
  std::string key;
  while (true) {
    MALLARD_RETURN_NOT_OK(child(0)->GetChunk(context, &child_chunk_));
    if (child_chunk_.size() == 0) break;
    group_chunk_.Reset();
    for (idx_t g = 0; g < groups_.size(); g++) {
      MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
          *groups_[g], child_chunk_, &group_chunk_.column(g)));
    }
    group_chunk_.SetCardinality(child_chunk_.size());
    // Evaluate aggregate arguments once per chunk.
    for (idx_t a = 0; a < aggregates_.size(); a++) {
      if (aggregates_[a].arg) {
        arg_vectors[a].Reset();
        MALLARD_RETURN_NOT_OK(ExpressionExecutor::Execute(
            *aggregates_[a].arg, child_chunk_, &arg_vectors[a]));
      }
    }
    for (idx_t r = 0; r < child_chunk_.size(); r++) {
      EncodeSortKey(group_chunk_, r, key_specs, &key);
      auto [it, inserted] = group_map_.try_emplace(key, group_rows_.size());
      idx_t group_idx = it->second;
      if (inserted) {
        std::vector<Value> row;
        for (idx_t g = 0; g < groups_.size(); g++) {
          row.push_back(group_chunk_.GetValue(g, r));
        }
        group_rows_.push_back(std::move(row));
        states_.emplace_back(aggregates_.size());
      }
      for (idx_t a = 0; a < aggregates_.size(); a++) {
        const Vector* arg = aggregates_[a].arg ? &arg_vectors[a] : nullptr;
        AggregateFunction::Update(aggregates_[a].type, arg, r,
                                  &states_[group_idx][a]);
      }
    }
  }
  return Status::OK();
}

Status PhysicalHashAggregate::GetChunk(ExecutionContext* context,
                                       DataChunk* out) {
  if (!sunk_) {
    MALLARD_RETURN_NOT_OK(Sink(context));
    sunk_ = true;
  }
  out->Reset();
  idx_t produced = 0;
  while (output_position_ < group_rows_.size() && produced < kVectorSize) {
    const auto& row = group_rows_[output_position_];
    for (idx_t g = 0; g < groups_.size(); g++) {
      out->SetValue(g, produced, row[g]);
    }
    for (idx_t a = 0; a < aggregates_.size(); a++) {
      out->SetValue(groups_.size() + a, produced,
                    AggregateFunction::Finalize(
                        aggregates_[a].type, aggregates_[a].return_type,
                        states_[output_position_][a]));
    }
    output_position_++;
    produced++;
  }
  out->SetCardinality(produced);
  return Status::OK();
}

std::string PhysicalHashAggregate::name() const {
  std::string result = "HASH_GROUP_BY(";
  for (size_t i = 0; i < groups_.size(); i++) {
    if (i > 0) result += ", ";
    result += groups_[i]->ToString();
  }
  return result + ")";
}

}  // namespace mallard
