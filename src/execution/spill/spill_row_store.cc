#include "mallard/execution/spill/spill_row_store.h"

#include <algorithm>
#include <cstring>

namespace mallard {

Status SpillRowStore::Append(const uint8_t* row, uint32_t len) {
  uint64_t needed = 4 + static_cast<uint64_t>(len);
  bool need_segment =
      segments_.empty() || segments_.back().used + needed >
                               segments_.back().buffer->size();
  if (!need_segment && !tail_pin_) {
    // FinishAppend released the tail; re-pin it (reloads if evicted).
    MALLARD_ASSIGN_OR_RETURN(tail_pin_,
                             buffers_->Pin(segments_.back().buffer));
    tail_data_ = tail_pin_.data();
    tail_pin_.MarkDirty();
  }
  if (need_segment) {
    tail_pin_.Release();  // completed segment becomes LRU-evictable
    tail_data_ = nullptr;
    MALLARD_ASSIGN_OR_RETURN(
        BufferHandle handle,
        buffers_->Allocate(std::max(segment_bytes_, needed),
                           /*spillable=*/true));
    tail_data_ = handle.data();
    segments_.push_back(Segment{handle.buffer(), 0});
    tail_pin_ = std::move(handle);
  }
  Segment& tail = segments_.back();
  std::memcpy(tail_data_ + tail.used, &len, 4);
  std::memcpy(tail_data_ + tail.used + 4, row, len);
  tail.used += needed;
  rows_++;
  bytes_ += needed;
  return Status::OK();
}

void SpillRowStore::FinishAppend() {
  tail_pin_.Release();
  tail_data_ = nullptr;
}

Status SpillRowStore::Next(Cursor* cursor, const uint8_t** row,
                           uint32_t* len) {
  while (true) {
    if (cursor->segment >= segments_.size()) {
      cursor->pin.Release();
      cursor->data = nullptr;
      *row = nullptr;
      *len = 0;
      return Status::OK();
    }
    const Segment& segment = segments_[cursor->segment];
    if (cursor->offset >= segment.used) {
      cursor->segment++;
      cursor->offset = 0;
      cursor->pin.Release();
      cursor->data = nullptr;
      continue;
    }
    if (!cursor->data) {
      MALLARD_ASSIGN_OR_RETURN(cursor->pin, buffers_->Pin(segment.buffer));
      cursor->data = cursor->pin.data();
    }
    std::memcpy(len, cursor->data + cursor->offset, 4);
    *row = cursor->data + cursor->offset + 4;
    cursor->offset += 4 + static_cast<uint64_t>(*len);
    return Status::OK();
  }
}

}  // namespace mallard
