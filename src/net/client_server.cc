#include "mallard/net/client_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "mallard/vector/chunk_serde.h"

namespace mallard {
namespace net {

namespace {
// Message framing: [u32 length][payload].
Status WriteFrame(int fd, const void* data, uint32_t len,
                  std::atomic<uint64_t>* bytes_counter) {
  uint32_t header = len;
  const uint8_t* parts[2] = {reinterpret_cast<const uint8_t*>(&header),
                             static_cast<const uint8_t*>(data)};
  size_t sizes[2] = {sizeof(header), len};
  for (int p = 0; p < 2; p++) {
    size_t done = 0;
    while (done < sizes[p]) {
      ssize_t n = ::send(fd, parts[p] + done, sizes[p] - done, 0);
      if (n <= 0) return Status::IOError("socket send failed");
      done += static_cast<size_t>(n);
    }
  }
  if (bytes_counter) bytes_counter->fetch_add(sizeof(header) + len);
  return Status::OK();
}

Status ReadExact(int fd, void* data, size_t len) {
  uint8_t* dst = static_cast<uint8_t*>(data);
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::recv(fd, dst + done, len - done, 0);
    if (n <= 0) return Status::IOError("socket recv failed");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFrame(int fd) {
  uint32_t len;
  MALLARD_RETURN_NOT_OK(ReadExact(fd, &len, sizeof(len)));
  std::vector<uint8_t> payload(len);
  if (len > 0) {
    MALLARD_RETURN_NOT_OK(ReadExact(fd, payload.data(), len));
  }
  return payload;
}
}  // namespace

Result<std::unique_ptr<QueryServer>> QueryServer::Start(Database* db,
                                                        Protocol protocol) {
  auto server =
      std::unique_ptr<QueryServer>(new QueryServer(db, protocol));
  MALLARD_RETURN_NOT_OK(server->NewSession().status());
  return server;
}

Result<QueryServer::ClientSession*> QueryServer::NewSession() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError("socketpair failed");
  }
  auto session = std::make_unique<ClientSession>();
  session->server_fd = fds[0];
  session->client_fd = fds[1];
  ClientSession* raw = session.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.push_back(std::move(session));
  }
  raw->thread = std::thread([this, raw] { Run(raw); });
  return raw;
}

Result<int> QueryServer::AddClient() {
  MALLARD_ASSIGN_OR_RETURN(ClientSession * session, NewSession());
  return session->client_fd;
}

size_t QueryServer::client_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

int QueryServer::client_fd() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.front()->client_fd;
}

QueryServer::~QueryServer() {
  // Orderly shutdown: wake every serving thread out of recv, then join.
  // In-flight statements run to completion — their sends fail once the
  // socket is down, which ends the loop cleanly.
  std::vector<ClientSession*> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& session : sessions_) sessions.push_back(session.get());
  }
  for (ClientSession* session : sessions) {
    ::shutdown(session->server_fd, SHUT_RDWR);
    ::shutdown(session->client_fd, SHUT_RDWR);
  }
  for (ClientSession* session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
  for (ClientSession* session : sessions) {
    ::close(session->server_fd);
    ::close(session->client_fd);
  }
}

void QueryServer::Run(ClientSession* session) {
  // One persistent Connection per client: session state (priority,
  // thread pins, open transactions) spans queries, and repeated query
  // shapes hit the Database's shared plan cache.
  Connection con(db_);
  while (true) {
    auto frame = ReadFrame(session->server_fd);
    if (!frame.ok()) return;  // client closed
    std::string sql(frame->begin(), frame->end());
    if (sql.empty()) return;  // orderly per-client shutdown
    Status status = ServeOne(&con, session, sql);
    if (!status.ok()) return;
  }
}

Status QueryServer::SendAll(ClientSession* session, const void* data,
                            size_t len) {
  return WriteFrame(session->server_fd, data, static_cast<uint32_t>(len),
                    &bytes_sent_);
}

Status QueryServer::ServeOne(Connection* con, ClientSession* session,
                             const std::string& sql) {
  auto result = con->Query(sql);
  // Status frame: [u8 ok][message].
  BinaryWriter status_frame;
  status_frame.WriteU8(result.ok() ? 1 : 0);
  status_frame.WriteString(result.ok() ? "" : result.status().ToString());
  MALLARD_RETURN_NOT_OK(
      SendAll(session, status_frame.data().data(), status_frame.size()));
  if (!result.ok()) return Status::OK();

  // Schema frame.
  BinaryWriter schema;
  schema.WriteU32(static_cast<uint32_t>((*result)->ColumnCount()));
  for (idx_t c = 0; c < (*result)->ColumnCount(); c++) {
    schema.WriteString((*result)->names()[c]);
    schema.WriteU8(static_cast<uint8_t>((*result)->types()[c]));
  }
  MALLARD_RETURN_NOT_OK(SendAll(session, schema.data().data(), schema.size()));

  // Data frames, ended by an empty frame.
  while (true) {
    MALLARD_ASSIGN_OR_RETURN(auto chunk, (*result)->Fetch());
    if (!chunk) break;
    BinaryWriter frame;
    if (protocol_ == Protocol::kBinaryColumnar) {
      SerializeChunk(*chunk, &frame);
    } else {
      // Text protocol: every value rendered as text, row by row — the
      // serialization cost the paper's section 5 measures.
      frame.WriteU32(static_cast<uint32_t>(chunk->size()));
      for (idx_t r = 0; r < chunk->size(); r++) {
        for (idx_t c = 0; c < chunk->ColumnCount(); c++) {
          Value v = chunk->GetValue(c, r);
          frame.WriteU8(v.is_null() ? 0 : 1);
          if (!v.is_null()) frame.WriteString(v.ToString());
        }
      }
    }
    MALLARD_RETURN_NOT_OK(SendAll(session, frame.data().data(), frame.size()));
  }
  return SendAll(session, nullptr, 0);
}

Status QueryClient::SendAll(const void* data, size_t len) {
  return WriteFrame(fd_, data, static_cast<uint32_t>(len), nullptr);
}

Status QueryClient::RecvAll(void* data, size_t len) {
  return ReadExact(fd_, data, len);
}

Result<std::unique_ptr<MaterializedQueryResult>> QueryClient::Query(
    const std::string& sql) {
  MALLARD_RETURN_NOT_OK(SendAll(sql.data(), sql.size()));
  MALLARD_ASSIGN_OR_RETURN(auto status_frame, ReadFrame(fd_));
  BinaryReader status_reader(status_frame.data(), status_frame.size());
  uint8_t ok;
  std::string message;
  MALLARD_RETURN_NOT_OK(status_reader.ReadU8(&ok));
  MALLARD_RETURN_NOT_OK(status_reader.ReadString(&message));
  if (!ok) return Status::Internal("server error: " + message);

  MALLARD_ASSIGN_OR_RETURN(auto schema_frame, ReadFrame(fd_));
  BinaryReader schema(schema_frame.data(), schema_frame.size());
  uint32_t n_cols;
  MALLARD_RETURN_NOT_OK(schema.ReadU32(&n_cols));
  std::vector<std::string> names(n_cols);
  std::vector<TypeId> types(n_cols);
  for (uint32_t c = 0; c < n_cols; c++) {
    MALLARD_RETURN_NOT_OK(schema.ReadString(&names[c]));
    uint8_t t;
    MALLARD_RETURN_NOT_OK(schema.ReadU8(&t));
    types[c] = static_cast<TypeId>(t);
  }

  std::vector<std::unique_ptr<DataChunk>> chunks;
  while (true) {
    MALLARD_ASSIGN_OR_RETURN(auto frame, ReadFrame(fd_));
    if (frame.empty()) break;
    auto chunk = std::make_unique<DataChunk>();
    if (protocol_ == Protocol::kBinaryColumnar) {
      BinaryReader reader(frame.data(), frame.size());
      MALLARD_RETURN_NOT_OK(DeserializeChunk(&reader, chunk.get()));
    } else {
      BinaryReader reader(frame.data(), frame.size());
      uint32_t rows;
      MALLARD_RETURN_NOT_OK(reader.ReadU32(&rows));
      chunk->Initialize(types);
      for (uint32_t r = 0; r < rows; r++) {
        for (uint32_t c = 0; c < n_cols; c++) {
          uint8_t valid;
          MALLARD_RETURN_NOT_OK(reader.ReadU8(&valid));
          if (!valid) {
            chunk->column(c).validity().SetInvalid(r);
            continue;
          }
          std::string text;
          MALLARD_RETURN_NOT_OK(reader.ReadString(&text));
          MALLARD_ASSIGN_OR_RETURN(Value v,
                                   Value::Varchar(text).CastTo(types[c]));
          chunk->SetValue(c, r, v);
        }
      }
      chunk->SetCardinality(rows);
    }
    chunks.push_back(std::move(chunk));
  }
  return std::make_unique<MaterializedQueryResult>(
      std::move(names), std::move(types), std::move(chunks));
}

}  // namespace net
}  // namespace mallard
