#include "mallard/parser/ast.h"

namespace mallard {

std::unique_ptr<ParsedExpression> ParsedExpression::Copy() const {
  auto copy = std::make_unique<ParsedExpression>(type);
  copy->name = name;
  copy->table_name = table_name;
  copy->alias = alias;
  copy->constant = constant;
  copy->compare_op = compare_op;
  copy->arith_op = arith_op;
  copy->is_and = is_and;
  copy->negated = negated;
  copy->has_else = has_else;
  copy->cast_type = cast_type;
  copy->parameter_index = parameter_index;
  for (const auto& child : children) {
    copy->children.push_back(child->Copy());
  }
  return copy;
}

bool ParsedExpression::Equals(const ParsedExpression& other) const {
  if (type != other.type || name != other.name ||
      table_name != other.table_name || compare_op != other.compare_op ||
      arith_op != other.arith_op || is_and != other.is_and ||
      negated != other.negated || has_else != other.has_else ||
      cast_type != other.cast_type ||
      parameter_index != other.parameter_index ||
      children.size() != other.children.size()) {
    return false;
  }
  if (type == PExprType::kConstant && !(constant == other.constant) &&
      !(constant.is_null() && other.constant.is_null())) {
    return false;
  }
  for (size_t i = 0; i < children.size(); i++) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

std::string ParsedExpression::ToString() const {
  switch (type) {
    case PExprType::kColumnRef:
      return table_name.empty() ? name : table_name + "." + name;
    case PExprType::kStar:
      return "*";
    case PExprType::kConstant:
      return constant.ToString();
    case PExprType::kComparison: {
      static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
      return "(" + children[0]->ToString() + " " +
             kOps[static_cast<int>(compare_op)] + " " +
             children[1]->ToString() + ")";
    }
    case PExprType::kConjunction: {
      std::string result = "(";
      for (size_t i = 0; i < children.size(); i++) {
        if (i > 0) result += is_and ? " AND " : " OR ";
        result += children[i]->ToString();
      }
      return result + ")";
    }
    case PExprType::kArithmetic: {
      static const char* kOps[] = {"+", "-", "*", "/", "%"};
      return "(" + children[0]->ToString() + " " +
             kOps[static_cast<int>(arith_op)] + " " +
             children[1]->ToString() + ")";
    }
    case PExprType::kFunction: {
      std::string result = name + "(";
      for (size_t i = 0; i < children.size(); i++) {
        if (i > 0) result += ", ";
        result += children[i]->ToString();
      }
      return result + ")";
    }
    case PExprType::kCase:
      return "CASE ...";
    case PExprType::kCast:
      return "CAST(" + children[0]->ToString() + " AS " +
             TypeIdToString(cast_type) + ")";
    case PExprType::kIsNull:
      return children[0]->ToString() +
             (negated ? " IS NOT NULL" : " IS NULL");
    case PExprType::kNot:
      return "NOT " + children[0]->ToString();
    case PExprType::kBetween:
      return children[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case PExprType::kInList: {
      std::string result =
          children[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); i++) {
        if (i > 1) result += ", ";
        result += children[i]->ToString();
      }
      return result + ")";
    }
    case PExprType::kLike:
      return children[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToString();
    case PExprType::kParameter:
      return "$" + std::to_string(parameter_index + 1);
  }
  return "?";
}

}  // namespace mallard
