#include "mallard/parser/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "mallard/common/string_util.h"

namespace mallard {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenType : uint8_t {
  kIdentifier,
  kInteger,
  kFloat,
  kString,
  kSymbol,  // one of ( ) , ; . * + - / %
  kOperator,  // = <> != < <= > >=
  kParameter,  // ? (text empty) or $N (text = N)
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;  // uppercased for identifiers? keep original; compare CI
  size_t position;
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Status Tokenize(std::vector<Token>* tokens) {
    size_t i = 0;
    while (i < sql_.size()) {
      char c = sql_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        i++;
        continue;
      }
      if (c == '-' && i + 1 < sql_.size() && sql_[i + 1] == '-') {
        while (i < sql_.size() && sql_[i] != '\n') i++;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < sql_.size() &&
               (std::isalnum(static_cast<unsigned char>(sql_[i])) ||
                sql_[i] == '_')) {
          i++;
        }
        tokens->push_back(
            {TokenType::kIdentifier, sql_.substr(start, i - start), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i + 1 < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[i + 1])))) {
        size_t start = i;
        bool is_float = false;
        while (i < sql_.size() &&
               (std::isdigit(static_cast<unsigned char>(sql_[i])) ||
                sql_[i] == '.' || sql_[i] == 'e' || sql_[i] == 'E' ||
                ((sql_[i] == '+' || sql_[i] == '-') && i > start &&
                 (sql_[i - 1] == 'e' || sql_[i - 1] == 'E')))) {
          if (sql_[i] == '.' || sql_[i] == 'e' || sql_[i] == 'E') {
            is_float = true;
          }
          i++;
        }
        tokens->push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                           sql_.substr(start, i - start), start});
        continue;
      }
      if (c == '\'') {
        std::string value;
        i++;
        bool closed = false;
        while (i < sql_.size()) {
          if (sql_[i] == '\'') {
            if (i + 1 < sql_.size() && sql_[i + 1] == '\'') {
              value += '\'';
              i += 2;
              continue;
            }
            closed = true;
            i++;
            break;
          }
          value += sql_[i++];
        }
        if (!closed) {
          return Status::Parser("unterminated string literal");
        }
        tokens->push_back({TokenType::kString, value, i});
        continue;
      }
      if (c == '"') {
        // Quoted identifier.
        std::string value;
        i++;
        bool closed = false;
        while (i < sql_.size()) {
          if (sql_[i] == '"') {
            closed = true;
            i++;
            break;
          }
          value += sql_[i++];
        }
        if (!closed) return Status::Parser("unterminated quoted identifier");
        tokens->push_back({TokenType::kIdentifier, value, i});
        continue;
      }
      // Prepared-statement parameter placeholders.
      if (c == '?') {
        tokens->push_back({TokenType::kParameter, "", i});
        i++;
        continue;
      }
      if (c == '$') {
        size_t start = ++i;
        while (i < sql_.size() &&
               std::isdigit(static_cast<unsigned char>(sql_[i]))) {
          i++;
        }
        if (i == start) {
          return Status::Parser("expected parameter number after '$'");
        }
        tokens->push_back(
            {TokenType::kParameter, sql_.substr(start, i - start), start});
        continue;
      }
      // Operators.
      if (c == '<' || c == '>' || c == '=' || c == '!') {
        std::string op(1, c);
        if (i + 1 < sql_.size() &&
            (sql_[i + 1] == '=' || (c == '<' && sql_[i + 1] == '>'))) {
          op += sql_[i + 1];
          i++;
        }
        i++;
        tokens->push_back({TokenType::kOperator, op, i});
        continue;
      }
      if (std::string("(),;.*+-/%").find(c) != std::string::npos) {
        tokens->push_back({TokenType::kSymbol, std::string(1, c), i});
        i++;
        continue;
      }
      return Status::Parser(StringUtil::Format(
          "unexpected character '%c' at position %zu", c, i));
    }
    tokens->push_back({TokenType::kEnd, "", sql_.size()});
    return Status::OK();
  }

 private:
  const std::string& sql_;
};

// ---------------------------------------------------------------------------
// Parser implementation
// ---------------------------------------------------------------------------

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, const std::string& sql)
      : tokens_(std::move(tokens)), sql_(sql) {}

  Result<std::vector<std::unique_ptr<SQLStatement>>> ParseStatements() {
    std::vector<std::unique_ptr<SQLStatement>> result;
    while (!AtEnd()) {
      if (MatchSymbol(";")) continue;
      MALLARD_ASSIGN_OR_RETURN(auto stmt, ParseStatement());
      result.push_back(std::move(stmt));
      if (!AtEnd() && !MatchSymbol(";")) {
        return Error("expected ';' between statements");
      }
    }
    return result;
  }

 private:
  // --- token helpers ------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(position_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  const Token& Advance() { return tokens_[position_++]; }
  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && StringUtil::CIEquals(t.text, kw);
  }
  bool MatchKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      position_++;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) {
      return Status::Parser("expected keyword " + kw + " near '" +
                            Peek().text + "'");
    }
    return Status::OK();
  }
  bool MatchSymbol(const std::string& sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      position_++;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& sym) {
    if (!MatchSymbol(sym)) {
      return Status::Parser("expected '" + sym + "' near '" + Peek().text +
                            "'");
    }
    return Status::OK();
  }
  Status Error(const std::string& message) const {
    return Status::Parser(message + " near '" + Peek().text + "'");
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::Parser("expected identifier near '" + Peek().text + "'");
    }
    return Advance().text;
  }

  static bool IsReserved(const std::string& word) {
    static const char* kReserved[] = {
        "SELECT", "FROM",  "WHERE", "GROUP",  "HAVING", "ORDER",  "LIMIT",
        "OFFSET", "JOIN",  "INNER", "LEFT",   "CROSS",  "ON",     "AS",
        "AND",    "OR",    "NOT",   "IN",     "LIKE",   "BETWEEN", "IS",
        "NULL",   "CASE",  "WHEN",  "THEN",   "ELSE",   "END",    "CAST",
        "UNION",  "BY",    "ASC",   "DESC",   "DISTINCT", "VALUES", "SET",
        "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "COPY",   "INTO",
        "SEMI",   "ANTI",  "USING",
    };
    for (const char* kw : kReserved) {
      if (StringUtil::CIEquals(word, kw)) return true;
    }
    return false;
  }

  // --- statements ---------------------------------------------------------

  Result<std::unique_ptr<SQLStatement>> ParseStatement() {
    if (PeekKeyword("SELECT")) {
      MALLARD_ASSIGN_OR_RETURN(auto select, ParseSelect());
      return std::unique_ptr<SQLStatement>(select.release());
    }
    if (PeekKeyword("CREATE")) return ParseCreate();
    if (PeekKeyword("DROP")) return ParseDrop();
    if (PeekKeyword("INSERT")) return ParseInsert();
    if (PeekKeyword("UPDATE")) return ParseUpdate();
    if (PeekKeyword("DELETE")) return ParseDelete();
    if (PeekKeyword("COPY")) return ParseCopy();
    if (PeekKeyword("BEGIN") || PeekKeyword("COMMIT") ||
        PeekKeyword("ROLLBACK") || PeekKeyword("ABORT")) {
      auto stmt = std::make_unique<TransactionStatement>();
      if (MatchKeyword("BEGIN")) {
        MatchKeyword("TRANSACTION");
        stmt->kind = TransactionStatement::Kind::kBegin;
      } else if (MatchKeyword("COMMIT")) {
        stmt->kind = TransactionStatement::Kind::kCommit;
      } else {
        Advance();
        stmt->kind = TransactionStatement::Kind::kRollback;
      }
      return std::unique_ptr<SQLStatement>(stmt.release());
    }
    if (PeekKeyword("PRAGMA")) {
      Advance();
      auto stmt = std::make_unique<PragmaStatement>();
      MALLARD_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier());
      if (Peek().type == TokenType::kOperator && Peek().text == "=") {
        Advance();
        stmt->value = Advance().text;
      } else if (MatchSymbol("(")) {
        stmt->value = Advance().text;
        MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return std::unique_ptr<SQLStatement>(stmt.release());
    }
    if (PeekKeyword("EXPLAIN")) {
      Advance();
      auto stmt = std::make_unique<ExplainStatement>();
      MALLARD_ASSIGN_OR_RETURN(stmt->inner, ParseStatement());
      return std::unique_ptr<SQLStatement>(stmt.release());
    }
    if (PeekKeyword("CHECKPOINT")) {
      Advance();
      return std::unique_ptr<SQLStatement>(new CheckpointStatement());
    }
    return Error("unrecognized statement");
  }

  Result<std::unique_ptr<SelectStatement>> ParseSelect() {
    MALLARD_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStatement>();
    if (MatchKeyword("DISTINCT")) stmt->distinct = true;
    // Select list.
    do {
      MALLARD_ASSIGN_OR_RETURN(auto expr, ParseExpression());
      if (MatchKeyword("AS")) {
        MALLARD_ASSIGN_OR_RETURN(expr->alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier &&
                 !IsReserved(Peek().text)) {
        expr->alias = Advance().text;
      }
      stmt->select_list.push_back(std::move(expr));
    } while (MatchSymbol(","));
    if (MatchKeyword("FROM")) {
      MALLARD_ASSIGN_OR_RETURN(stmt->from, ParseTableRefList());
    }
    if (MatchKeyword("WHERE")) {
      MALLARD_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
    }
    if (MatchKeyword("GROUP")) {
      MALLARD_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        MALLARD_ASSIGN_OR_RETURN(auto expr, ParseExpression());
        stmt->group_by.push_back(std::move(expr));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("HAVING")) {
      MALLARD_ASSIGN_OR_RETURN(stmt->having, ParseExpression());
    }
    if (MatchKeyword("ORDER")) {
      MALLARD_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OrderByItem item;
        MALLARD_ASSIGN_OR_RETURN(item.expr, ParseExpression());
        if (MatchKeyword("DESC")) {
          item.ascending = false;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      stmt->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    if (MatchKeyword("OFFSET")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after OFFSET");
      }
      stmt->offset = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    return stmt;
  }

  Result<std::unique_ptr<TableRef>> ParseTableRefList() {
    MALLARD_ASSIGN_OR_RETURN(auto left, ParseJoinChain());
    while (MatchSymbol(",")) {
      MALLARD_ASSIGN_OR_RETURN(auto right, ParseJoinChain());
      auto join = std::make_unique<TableRef>(TableRef::Type::kJoin);
      join->is_cross = true;
      join->left = std::move(left);
      join->right = std::move(right);
      left = std::move(join);
    }
    return left;
  }

  Result<std::unique_ptr<TableRef>> ParseJoinChain() {
    MALLARD_ASSIGN_OR_RETURN(auto left, ParseSingleTable());
    while (true) {
      JoinType join_type = JoinType::kInner;
      bool is_cross = false;
      if (PeekKeyword("JOIN") || PeekKeyword("INNER")) {
        MatchKeyword("INNER");
        MALLARD_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      } else if (PeekKeyword("LEFT")) {
        Advance();
        MatchKeyword("OUTER");
        MALLARD_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        join_type = JoinType::kLeft;
      } else if (PeekKeyword("SEMI")) {
        Advance();
        MALLARD_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        join_type = JoinType::kSemi;
      } else if (PeekKeyword("ANTI")) {
        Advance();
        MALLARD_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        join_type = JoinType::kAnti;
      } else if (PeekKeyword("CROSS")) {
        Advance();
        MALLARD_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        is_cross = true;
      } else {
        break;
      }
      MALLARD_ASSIGN_OR_RETURN(auto right, ParseSingleTable());
      auto join = std::make_unique<TableRef>(TableRef::Type::kJoin);
      join->join_type = join_type;
      join->is_cross = is_cross;
      join->left = std::move(left);
      join->right = std::move(right);
      if (!is_cross) {
        MALLARD_RETURN_NOT_OK(ExpectKeyword("ON"));
        MALLARD_ASSIGN_OR_RETURN(join->condition, ParseExpression());
      }
      left = std::move(join);
    }
    return left;
  }

  Result<std::unique_ptr<TableRef>> ParseSingleTable() {
    if (MatchSymbol("(")) {
      // Derived table: (SELECT ...) alias
      auto ref = std::make_unique<TableRef>(TableRef::Type::kSubquery);
      MALLARD_ASSIGN_OR_RETURN(ref->subquery, ParseSelect());
      MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
      MatchKeyword("AS");
      if (Peek().type == TokenType::kIdentifier && !IsReserved(Peek().text)) {
        ref->alias = Advance().text;
      }
      return ref;
    }
    MALLARD_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    if (StringUtil::CIEquals(name, "read_csv") && MatchSymbol("(")) {
      auto ref = std::make_unique<TableRef>(TableRef::Type::kCsv);
      if (Peek().type != TokenType::kString) {
        return Error("read_csv expects a path string");
      }
      ref->csv_path = Advance().text;
      MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
      MatchKeyword("AS");
      if (Peek().type == TokenType::kIdentifier && !IsReserved(Peek().text)) {
        ref->alias = Advance().text;
      }
      if (ref->alias.empty()) ref->alias = "read_csv";
      return ref;
    }
    auto ref = std::make_unique<TableRef>(TableRef::Type::kBase);
    ref->name = name;
    MatchKeyword("AS");
    if (Peek().type == TokenType::kIdentifier && !IsReserved(Peek().text)) {
      ref->alias = Advance().text;
    } else {
      ref->alias = name;
    }
    return ref;
  }

  Result<std::unique_ptr<SQLStatement>> ParseCreate() {
    MALLARD_RETURN_NOT_OK(ExpectKeyword("CREATE"));
    bool or_replace = false;
    if (MatchKeyword("OR")) {
      MALLARD_RETURN_NOT_OK(ExpectKeyword("REPLACE"));
      or_replace = true;
    }
    if (MatchKeyword("VIEW")) {
      auto stmt = std::make_unique<CreateViewStatement>();
      stmt->or_replace = or_replace;
      MALLARD_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier());
      if (MatchSymbol("(")) {
        do {
          MALLARD_ASSIGN_OR_RETURN(auto alias, ExpectIdentifier());
          stmt->aliases.push_back(alias);
        } while (MatchSymbol(","));
        MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      MALLARD_RETURN_NOT_OK(ExpectKeyword("AS"));
      // Store the raw SQL of the select.
      size_t start_pos = Peek().position;
      MALLARD_ASSIGN_OR_RETURN(auto select, ParseSelect());
      (void)select;
      size_t end_pos = AtEnd() ? sql_.size() : Peek().position;
      stmt->select_sql = sql_.substr(start_pos, end_pos - start_pos);
      return std::unique_ptr<SQLStatement>(stmt.release());
    }
    MALLARD_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<CreateTableStatement>();
    if (MatchKeyword("IF")) {
      MALLARD_RETURN_NOT_OK(ExpectKeyword("NOT"));
      MALLARD_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      stmt->if_not_exists = true;
    }
    MALLARD_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier());
    if (MatchKeyword("AS")) {
      MALLARD_ASSIGN_OR_RETURN(stmt->as_select, ParseSelect());
      return std::unique_ptr<SQLStatement>(stmt.release());
    }
    MALLARD_RETURN_NOT_OK(ExpectSymbol("("));
    do {
      ColumnDefinition col;
      MALLARD_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      MALLARD_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      MALLARD_ASSIGN_OR_RETURN(col.type, TypeIdFromString(type_name));
      // Swallow optional type parameters: VARCHAR(32), DECIMAL(12,2).
      if (MatchSymbol("(")) {
        while (!MatchSymbol(")")) {
          if (AtEnd()) return Error("unterminated type parameters");
          Advance();
        }
      }
      // Swallow simple column constraints.
      while (PeekKeyword("NOT") || PeekKeyword("NULL") ||
             PeekKeyword("PRIMARY") || PeekKeyword("KEY") ||
             PeekKeyword("UNIQUE")) {
        Advance();
      }
      stmt->columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
    return std::unique_ptr<SQLStatement>(stmt.release());
  }

  Result<std::unique_ptr<SQLStatement>> ParseDrop() {
    MALLARD_RETURN_NOT_OK(ExpectKeyword("DROP"));
    auto stmt = std::make_unique<DropStatement>();
    if (MatchKeyword("VIEW")) {
      stmt->is_view = true;
    } else {
      MALLARD_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    }
    if (MatchKeyword("IF")) {
      MALLARD_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      stmt->if_exists = true;
    }
    MALLARD_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier());
    return std::unique_ptr<SQLStatement>(stmt.release());
  }

  Result<std::unique_ptr<SQLStatement>> ParseInsert() {
    MALLARD_RETURN_NOT_OK(ExpectKeyword("INSERT"));
    MALLARD_RETURN_NOT_OK(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStatement>();
    MALLARD_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    if (MatchSymbol("(")) {
      do {
        MALLARD_ASSIGN_OR_RETURN(auto col, ExpectIdentifier());
        stmt->columns.push_back(col);
      } while (MatchSymbol(","));
      MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    if (MatchKeyword("VALUES")) {
      do {
        MALLARD_RETURN_NOT_OK(ExpectSymbol("("));
        std::vector<PExpr> row;
        do {
          MALLARD_ASSIGN_OR_RETURN(auto expr, ParseExpression());
          row.push_back(std::move(expr));
        } while (MatchSymbol(","));
        MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
        stmt->values.push_back(std::move(row));
      } while (MatchSymbol(","));
      return std::unique_ptr<SQLStatement>(stmt.release());
    }
    MALLARD_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    return std::unique_ptr<SQLStatement>(stmt.release());
  }

  Result<std::unique_ptr<SQLStatement>> ParseUpdate() {
    MALLARD_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStatement>();
    MALLARD_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    MALLARD_RETURN_NOT_OK(ExpectKeyword("SET"));
    do {
      MALLARD_ASSIGN_OR_RETURN(auto column, ExpectIdentifier());
      if (!(Peek().type == TokenType::kOperator && Peek().text == "=")) {
        return Error("expected '=' in UPDATE assignment");
      }
      Advance();
      MALLARD_ASSIGN_OR_RETURN(auto expr, ParseExpression());
      stmt->assignments.emplace_back(column, std::move(expr));
    } while (MatchSymbol(","));
    if (MatchKeyword("WHERE")) {
      MALLARD_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
    }
    return std::unique_ptr<SQLStatement>(stmt.release());
  }

  Result<std::unique_ptr<SQLStatement>> ParseDelete() {
    MALLARD_RETURN_NOT_OK(ExpectKeyword("DELETE"));
    MALLARD_RETURN_NOT_OK(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStatement>();
    MALLARD_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    if (MatchKeyword("WHERE")) {
      MALLARD_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
    }
    return std::unique_ptr<SQLStatement>(stmt.release());
  }

  Result<std::unique_ptr<SQLStatement>> ParseCopy() {
    MALLARD_RETURN_NOT_OK(ExpectKeyword("COPY"));
    auto stmt = std::make_unique<CopyStatement>();
    MALLARD_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    if (MatchKeyword("FROM")) {
      stmt->is_from = true;
    } else {
      MALLARD_RETURN_NOT_OK(ExpectKeyword("TO"));
      stmt->is_from = false;
    }
    if (Peek().type != TokenType::kString) {
      return Error("COPY expects a quoted path");
    }
    stmt->path = Advance().text;
    return std::unique_ptr<SQLStatement>(stmt.release());
  }

  // --- expressions ----------------------------------------------------------

  Result<PExpr> ParseExpression() { return ParseOr(); }

  Result<PExpr> ParseOr() {
    MALLARD_ASSIGN_OR_RETURN(auto left, ParseAnd());
    while (MatchKeyword("OR")) {
      MALLARD_ASSIGN_OR_RETURN(auto right, ParseAnd());
      auto node = std::make_unique<ParsedExpression>(PExprType::kConjunction);
      node->is_and = false;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<PExpr> ParseAnd() {
    MALLARD_ASSIGN_OR_RETURN(auto left, ParseNot());
    while (MatchKeyword("AND")) {
      MALLARD_ASSIGN_OR_RETURN(auto right, ParseNot());
      auto node = std::make_unique<ParsedExpression>(PExprType::kConjunction);
      node->is_and = true;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<PExpr> ParseNot() {
    if (MatchKeyword("NOT")) {
      MALLARD_ASSIGN_OR_RETURN(auto child, ParseNot());
      auto node = std::make_unique<ParsedExpression>(PExprType::kNot);
      node->children.push_back(std::move(child));
      return PExpr(std::move(node));
    }
    return ParsePredicate();
  }

  Result<PExpr> ParsePredicate() {
    MALLARD_ASSIGN_OR_RETURN(auto left, ParseAddSub());
    while (true) {
      if (Peek().type == TokenType::kOperator) {
        std::string op = Advance().text;
        CompareOp cmp;
        if (op == "=") {
          cmp = CompareOp::kEqual;
        } else if (op == "<>" || op == "!=") {
          cmp = CompareOp::kNotEqual;
        } else if (op == "<") {
          cmp = CompareOp::kLess;
        } else if (op == "<=") {
          cmp = CompareOp::kLessEqual;
        } else if (op == ">") {
          cmp = CompareOp::kGreater;
        } else if (op == ">=") {
          cmp = CompareOp::kGreaterEqual;
        } else {
          return Error("unknown operator " + op);
        }
        MALLARD_ASSIGN_OR_RETURN(auto right, ParseAddSub());
        auto node =
            std::make_unique<ParsedExpression>(PExprType::kComparison);
        node->compare_op = cmp;
        node->children.push_back(std::move(left));
        node->children.push_back(std::move(right));
        left = std::move(node);
        continue;
      }
      bool negated = false;
      size_t save = position_;
      if (MatchKeyword("NOT")) {
        negated = true;
        if (!PeekKeyword("IN") && !PeekKeyword("LIKE") &&
            !PeekKeyword("BETWEEN")) {
          position_ = save;
          break;
        }
      }
      if (MatchKeyword("IS")) {
        bool not_null = MatchKeyword("NOT");
        MALLARD_RETURN_NOT_OK(ExpectKeyword("NULL"));
        auto node = std::make_unique<ParsedExpression>(PExprType::kIsNull);
        node->negated = not_null;
        node->children.push_back(std::move(left));
        left = std::move(node);
        continue;
      }
      if (MatchKeyword("BETWEEN")) {
        MALLARD_ASSIGN_OR_RETURN(auto low, ParseAddSub());
        MALLARD_RETURN_NOT_OK(ExpectKeyword("AND"));
        MALLARD_ASSIGN_OR_RETURN(auto high, ParseAddSub());
        auto node = std::make_unique<ParsedExpression>(PExprType::kBetween);
        node->negated = negated;
        node->children.push_back(std::move(left));
        node->children.push_back(std::move(low));
        node->children.push_back(std::move(high));
        left = std::move(node);
        continue;
      }
      if (MatchKeyword("IN")) {
        MALLARD_RETURN_NOT_OK(ExpectSymbol("("));
        auto node = std::make_unique<ParsedExpression>(PExprType::kInList);
        node->negated = negated;
        node->children.push_back(std::move(left));
        do {
          MALLARD_ASSIGN_OR_RETURN(auto item, ParseExpression());
          node->children.push_back(std::move(item));
        } while (MatchSymbol(","));
        MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
        left = std::move(node);
        continue;
      }
      if (MatchKeyword("LIKE")) {
        MALLARD_ASSIGN_OR_RETURN(auto pattern, ParseAddSub());
        auto node = std::make_unique<ParsedExpression>(PExprType::kLike);
        node->negated = negated;
        node->children.push_back(std::move(left));
        node->children.push_back(std::move(pattern));
        left = std::move(node);
        continue;
      }
      break;
    }
    return left;
  }

  Result<PExpr> ParseAddSub() {
    MALLARD_ASSIGN_OR_RETURN(auto left, ParseMulDiv());
    while (Peek().type == TokenType::kSymbol &&
           (Peek().text == "+" || Peek().text == "-")) {
      ArithOp op = Advance().text == "+" ? ArithOp::kAdd : ArithOp::kSubtract;
      MALLARD_ASSIGN_OR_RETURN(auto right, ParseMulDiv());
      auto node = std::make_unique<ParsedExpression>(PExprType::kArithmetic);
      node->arith_op = op;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<PExpr> ParseMulDiv() {
    MALLARD_ASSIGN_OR_RETURN(auto left, ParseUnary());
    while (Peek().type == TokenType::kSymbol &&
           (Peek().text == "*" || Peek().text == "/" || Peek().text == "%")) {
      std::string op = Advance().text;
      MALLARD_ASSIGN_OR_RETURN(auto right, ParseUnary());
      auto node = std::make_unique<ParsedExpression>(PExprType::kArithmetic);
      node->arith_op = op == "*" ? ArithOp::kMultiply
                                 : (op == "/" ? ArithOp::kDivide
                                              : ArithOp::kModulo);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<PExpr> ParseUnary() {
    if (Peek().type == TokenType::kSymbol && Peek().text == "-") {
      Advance();
      MALLARD_ASSIGN_OR_RETURN(auto child, ParseUnary());
      // Fold negative literals.
      if (child->type == PExprType::kConstant) {
        if (child->constant.type() == TypeId::kBigInt) {
          child->constant = Value::BigInt(-child->constant.GetBigInt());
          return child;
        }
        if (child->constant.type() == TypeId::kInteger) {
          child->constant = Value::Integer(-child->constant.GetInteger());
          return child;
        }
        if (child->constant.type() == TypeId::kDouble) {
          child->constant = Value::Double(-child->constant.GetDouble());
          return child;
        }
      }
      auto node = std::make_unique<ParsedExpression>(PExprType::kArithmetic);
      node->arith_op = ArithOp::kSubtract;
      auto zero = std::make_unique<ParsedExpression>(PExprType::kConstant);
      zero->constant = Value::Integer(0);
      node->children.push_back(std::move(zero));
      node->children.push_back(std::move(child));
      return PExpr(std::move(node));
    }
    if (Peek().type == TokenType::kSymbol && Peek().text == "+") {
      Advance();
      return ParseUnary();
    }
    return ParsePrimary();
  }

  Result<PExpr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kInteger: {
        Advance();
        int64_t v = std::strtoll(token.text.c_str(), nullptr, 10);
        auto node = std::make_unique<ParsedExpression>(PExprType::kConstant);
        if (v >= INT32_MIN && v <= INT32_MAX) {
          node->constant = Value::Integer(static_cast<int32_t>(v));
        } else {
          node->constant = Value::BigInt(v);
        }
        return PExpr(std::move(node));
      }
      case TokenType::kFloat: {
        Advance();
        auto node = std::make_unique<ParsedExpression>(PExprType::kConstant);
        node->constant = Value::Double(std::strtod(token.text.c_str(),
                                                   nullptr));
        return PExpr(std::move(node));
      }
      case TokenType::kString: {
        Advance();
        auto node = std::make_unique<ParsedExpression>(PExprType::kConstant);
        node->constant = Value::Varchar(token.text);
        return PExpr(std::move(node));
      }
      case TokenType::kSymbol:
        if (token.text == "(") {
          Advance();
          MALLARD_ASSIGN_OR_RETURN(auto expr, ParseExpression());
          MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
          return expr;
        }
        if (token.text == "*") {
          Advance();
          return PExpr(std::make_unique<ParsedExpression>(PExprType::kStar));
        }
        return Error("unexpected symbol in expression");
      case TokenType::kParameter: {
        Advance();
        auto node = std::make_unique<ParsedExpression>(PExprType::kParameter);
        if (token.text.empty()) {
          // Positional '?': takes the next slot after everything seen so
          // far, so mixing with $N never aliases an explicit slot.
          node->parameter_index = next_positional_parameter_++;
        } else {
          constexpr int64_t kMaxParameterNumber = 65535;
          int64_t n = std::strtoll(token.text.c_str(), nullptr, 10);
          if (n < 1) {
            return Error("parameter numbers start at $1");
          }
          if (n > kMaxParameterNumber) {
            return Error("parameter number exceeds the maximum of $65535");
          }
          node->parameter_index = static_cast<idx_t>(n - 1);
          next_positional_parameter_ =
              std::max(next_positional_parameter_, static_cast<idx_t>(n));
        }
        return PExpr(std::move(node));
      }
      case TokenType::kIdentifier:
        return ParseIdentifierExpression();
      default:
        return Error("unexpected token in expression");
    }
  }

  Result<PExpr> ParseIdentifierExpression() {
    // Keyword-led expression forms.
    if (PeekKeyword("NULL")) {
      Advance();
      auto node = std::make_unique<ParsedExpression>(PExprType::kConstant);
      node->constant = Value();
      return PExpr(std::move(node));
    }
    if (PeekKeyword("TRUE") || PeekKeyword("FALSE")) {
      bool v = PeekKeyword("TRUE");
      Advance();
      auto node = std::make_unique<ParsedExpression>(PExprType::kConstant);
      node->constant = Value::Boolean(v);
      return PExpr(std::move(node));
    }
    if (PeekKeyword("DATE") && Peek(1).type == TokenType::kString) {
      Advance();
      std::string text = Advance().text;
      MALLARD_ASSIGN_OR_RETURN(int32_t days, date::FromString(text));
      auto node = std::make_unique<ParsedExpression>(PExprType::kConstant);
      node->constant = Value::Date(days);
      return PExpr(std::move(node));
    }
    if (PeekKeyword("TIMESTAMP") && Peek(1).type == TokenType::kString) {
      Advance();
      std::string text = Advance().text;
      MALLARD_ASSIGN_OR_RETURN(Value v,
                               Value::Varchar(text).CastTo(TypeId::kTimestamp));
      auto node = std::make_unique<ParsedExpression>(PExprType::kConstant);
      node->constant = v;
      return PExpr(std::move(node));
    }
    if (PeekKeyword("INTERVAL")) {
      // INTERVAL '<n>' DAY|MONTH|YEAR — represented as an integer constant
      // of days/months/years with the unit recorded in `name`; only valid
      // in date +/- interval arithmetic, which the binder folds.
      Advance();
      if (Peek().type != TokenType::kString &&
          Peek().type != TokenType::kInteger) {
        return Error("expected quantity after INTERVAL");
      }
      std::string quantity = Advance().text;
      MALLARD_ASSIGN_OR_RETURN(std::string unit, ExpectIdentifier());
      auto node = std::make_unique<ParsedExpression>(PExprType::kConstant);
      node->constant =
          Value::Integer(static_cast<int32_t>(std::strtoll(
              quantity.c_str(), nullptr, 10)));
      node->name = "interval_" + StringUtil::Lower(unit);
      return PExpr(std::move(node));
    }
    if (PeekKeyword("CAST")) {
      Advance();
      MALLARD_RETURN_NOT_OK(ExpectSymbol("("));
      MALLARD_ASSIGN_OR_RETURN(auto child, ParseExpression());
      MALLARD_RETURN_NOT_OK(ExpectKeyword("AS"));
      MALLARD_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
      MALLARD_ASSIGN_OR_RETURN(TypeId type, TypeIdFromString(type_name));
      if (MatchSymbol("(")) {
        while (!MatchSymbol(")")) {
          if (AtEnd()) return Error("unterminated type parameters");
          Advance();
        }
      }
      MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
      auto node = std::make_unique<ParsedExpression>(PExprType::kCast);
      node->cast_type = type;
      node->children.push_back(std::move(child));
      return PExpr(std::move(node));
    }
    if (PeekKeyword("CASE")) {
      Advance();
      auto node = std::make_unique<ParsedExpression>(PExprType::kCase);
      // Optional CASE <expr> WHEN form.
      PExpr base;
      if (!PeekKeyword("WHEN")) {
        MALLARD_ASSIGN_OR_RETURN(base, ParseExpression());
      }
      while (MatchKeyword("WHEN")) {
        MALLARD_ASSIGN_OR_RETURN(auto when, ParseExpression());
        if (base) {
          auto eq = std::make_unique<ParsedExpression>(PExprType::kComparison);
          eq->compare_op = CompareOp::kEqual;
          eq->children.push_back(base->Copy());
          eq->children.push_back(std::move(when));
          when = std::move(eq);
        }
        MALLARD_RETURN_NOT_OK(ExpectKeyword("THEN"));
        MALLARD_ASSIGN_OR_RETURN(auto then, ParseExpression());
        node->children.push_back(std::move(when));
        node->children.push_back(std::move(then));
      }
      if (MatchKeyword("ELSE")) {
        MALLARD_ASSIGN_OR_RETURN(auto else_expr, ParseExpression());
        node->has_else = true;
        node->children.push_back(std::move(else_expr));
      }
      MALLARD_RETURN_NOT_OK(ExpectKeyword("END"));
      return PExpr(std::move(node));
    }
    // Plain identifier: column ref, qualified ref, or function call.
    // Reserved words cannot start an expression (catches "SELECT FROM").
    if (IsReserved(Peek().text)) {
      return Error("unexpected keyword in expression");
    }
    std::string first = Advance().text;
    if (MatchSymbol("(")) {
      auto node = std::make_unique<ParsedExpression>(PExprType::kFunction);
      node->name = StringUtil::Lower(first);
      if (MatchSymbol(")")) return PExpr(std::move(node));
      if (MatchSymbol("*")) {
        // COUNT(*)
        MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
        node->children.push_back(
            std::make_unique<ParsedExpression>(PExprType::kStar));
        return PExpr(std::move(node));
      }
      MatchKeyword("DISTINCT");  // parsed, not supported: binder rejects
      do {
        MALLARD_ASSIGN_OR_RETURN(auto arg, ParseExpression());
        node->children.push_back(std::move(arg));
      } while (MatchSymbol(","));
      MALLARD_RETURN_NOT_OK(ExpectSymbol(")"));
      return PExpr(std::move(node));
    }
    auto node = std::make_unique<ParsedExpression>(PExprType::kColumnRef);
    if (MatchSymbol(".")) {
      node->table_name = first;
      MALLARD_ASSIGN_OR_RETURN(node->name, ExpectIdentifier());
    } else {
      node->name = first;
    }
    return PExpr(std::move(node));
  }

  std::vector<Token> tokens_;
  const std::string& sql_;
  size_t position_ = 0;
  idx_t next_positional_parameter_ = 0;  // index assigned to the next '?'
};

}  // namespace

Result<std::vector<std::unique_ptr<SQLStatement>>> Parser::Parse(
    const std::string& sql) {
  Lexer lexer(sql);
  std::vector<Token> tokens;
  MALLARD_RETURN_NOT_OK(lexer.Tokenize(&tokens));
  ParserImpl impl(std::move(tokens), sql);
  return impl.ParseStatements();
}

}  // namespace mallard
