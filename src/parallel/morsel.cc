#include "mallard/parallel/morsel.h"

#include <algorithm>

#include "mallard/governor/resource_governor.h"
#include "mallard/parallel/task_scheduler.h"

namespace mallard {

TableMorselSource::TableMorselSource(idx_t row_group_count,
                                     const ResourceGovernor* governor,
                                     int thread_limit,
                                     const TaskScheduler* scheduler,
                                     const QueryTicket* ticket)
    : row_group_count_(row_group_count),
      governor_(governor),
      thread_limit_(thread_limit),
      scheduler_(scheduler),
      ticket_(ticket) {}

int TableMorselSource::EffectiveBudget() const {
  if (thread_limit_ > 0) return thread_limit_;
  int budget = governor_ ? governor_->EffectiveThreadBudget() : 1;
  if (scheduler_ && ticket_) {
    // Inter-query fairness: this query's weighted slice of the pool,
    // re-read at every morsel boundary so a long scan sheds workers the
    // moment another query registers.
    budget = std::min(budget, scheduler_->FairThreadShare(ticket_));
  }
  return budget;
}

bool TableMorselSource::Next(int worker, idx_t* row_group) {
  // The drain point of reactive governing: budgets are only re-read
  // between morsels, so a budget cut never interrupts in-flight work —
  // it just stops surplus workers from claiming more.
  if (worker > 0 && worker >= EffectiveBudget()) return false;
  idx_t g = next_.fetch_add(1);
  if (g >= row_group_count_) return false;
  claimed_[worker < kMaxWorkers ? worker : 0].fetch_add(1);
  *row_group = g;
  return true;
}

PhysicalMorselScan::PhysicalMorselScan(
    std::shared_ptr<TableMorselSource> source, int worker,
    const DataTable* table, std::vector<idx_t> column_ids,
    std::vector<TableFilter> filters, std::vector<TypeId> types)
    : PhysicalOperator(std::move(types)),
      source_(std::move(source)),
      worker_(worker),
      table_(table),
      column_ids_(std::move(column_ids)),
      filters_(std::move(filters)) {}

Status PhysicalMorselScan::GetChunk(ExecutionContext* context,
                                    DataChunk* out) {
  out->Reset();
  while (true) {
    MALLARD_RETURN_NOT_OK(context->CheckInterrupt());
    if (!morsel_active_) {
      idx_t row_group;
      if (!source_->Next(worker_, &row_group)) return Status::OK();
      state_ = TableScanState{};
      state_.column_ids = column_ids_;
      state_.filters = filters_;
      state_.row_group_index = row_group;
      state_.max_row_group = row_group + 1;
      state_.salvage = context->salvage_mode;
      morsel_active_ = true;
    }
    if (table_->Scan(*context->txn, &state_, out)) return Status::OK();
    if (!state_.error.ok()) return std::move(state_.error);
    morsel_active_ = false;  // morsel exhausted; claim the next one
  }
}

std::string PhysicalMorselScan::name() const {
  return "MORSEL_SCAN(" + table_->name() + ", worker " +
         std::to_string(worker_) + ")";
}

namespace parallel {

int ResolveLaunchWidth(const ExecutionContext* context, idx_t item_count) {
  int budget = context->thread_limit > 0
                   ? context->thread_limit
                   : context->governor->EffectiveThreadBudget();
  if (context->thread_limit <= 0 && context->scheduler && context->ticket) {
    budget =
        std::min(budget, context->scheduler->FairThreadShare(context->ticket));
  }
  int width = std::min<int>(budget, TableMorselSource::kMaxWorkers);
  return static_cast<int>(std::min<idx_t>(
      static_cast<idx_t>(std::max(width, 1)), item_count));
}

ParallelRun PlanParallelScan(ExecutionContext* context,
                             const PhysicalOperator* subtree) {
  ParallelRun run;
  if (!context || !context->scheduler || !context->governor) return run;
  const DataTable* table = subtree->ParallelSourceTable();
  if (!table) return run;
  idx_t groups = table->RowGroupCount();
  int threads = ResolveLaunchWidth(context, groups);
  if (threads <= 1) return run;
  run.threads = threads;
  run.source = std::make_shared<TableMorselSource>(
      groups, context->governor, context->thread_limit, context->scheduler,
      context->ticket);
  return run;
}

std::vector<std::unique_ptr<PhysicalOperator>> CloneWorkers(
    const ParallelRun& run, const PhysicalOperator* subtree) {
  std::vector<std::unique_ptr<PhysicalOperator>> clones;
  for (int w = 0; w < run.threads; w++) {
    ParallelCloneContext ctx{run.source, w};
    auto clone = subtree->MorselClone(ctx);
    if (!clone) return {};
    clones.push_back(std::move(clone));
  }
  return clones;
}

bool MorselPipeline::Plan(ExecutionContext* context,
                          const PhysicalOperator* subtree) {
  run_ = PlanParallelScan(context, subtree);
  if (run_.threads <= 1) return false;
  clones_ = CloneWorkers(run_, subtree);
  if (clones_.empty()) {
    run_ = ParallelRun{};
    return false;
  }
  return true;
}

Status MorselPipeline::RunPass(
    ExecutionContext* context,
    const std::function<Status(int worker, PhysicalOperator* scan)>& worker) {
  auto task = [&](int w) -> Status { return worker(w, clones_[w].get()); };
  return context->scheduler->Run(static_cast<int>(clones_.size()), task,
                                 /*governed=*/context->thread_limit == 0,
                                 context->ticket);
}

Status RunMorselPipeline(
    ExecutionContext* context, const PhysicalOperator* subtree, bool* ran,
    const std::function<void(idx_t workers)>& prepare,
    const std::function<Status(int worker, PhysicalOperator* scan)>& worker) {
  *ran = false;
  MorselPipeline pipeline;
  if (!pipeline.Plan(context, subtree)) return Status::OK();
  prepare(pipeline.threads());
  MALLARD_RETURN_NOT_OK(pipeline.RunPass(context, worker));
  *ran = true;
  return Status::OK();
}

Status RunPartitionedTasks(ExecutionContext* context, idx_t task_count,
                           const std::function<Status(idx_t task)>& task) {
  auto run_serial = [&]() -> Status {
    for (idx_t i = 0; i < task_count; i++) {
      MALLARD_RETURN_NOT_OK(task(i));
    }
    return Status::OK();
  };
  if (!context || !context->scheduler || !context->governor ||
      task_count <= 1) {
    return run_serial();
  }
  int width = ResolveLaunchWidth(context, task_count);
  if (width <= 1) return run_serial();
  std::atomic<idx_t> next{0};
  auto claim = [&](int worker) -> Status {
    while (true) {
      // Budget re-read at every task boundary, mirroring
      // TableMorselSource::Next: surplus workers stop claiming, worker 0
      // drains whatever is left. The fair-share clamp inside
      // ResolveLaunchWidth applies here too, so partition merges shed
      // workers to concurrent queries just like scans do.
      if (worker > 0 && context->thread_limit <= 0 &&
          worker >= ResolveLaunchWidth(context, task_count)) {
        return Status::OK();
      }
      idx_t i = next.fetch_add(1);
      if (i >= task_count) return Status::OK();
      MALLARD_RETURN_NOT_OK(task(i));
    }
  };
  return context->scheduler->Run(width, claim,
                                 /*governed=*/context->thread_limit == 0,
                                 context->ticket);
}

}  // namespace parallel

}  // namespace mallard
