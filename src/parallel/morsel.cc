#include "mallard/parallel/morsel.h"

#include <algorithm>

#include "mallard/governor/resource_governor.h"
#include "mallard/parallel/task_scheduler.h"

namespace mallard {

TableMorselSource::TableMorselSource(idx_t row_group_count,
                                     const ResourceGovernor* governor,
                                     int thread_limit)
    : row_group_count_(row_group_count),
      governor_(governor),
      thread_limit_(thread_limit) {}

int TableMorselSource::EffectiveBudget() const {
  if (thread_limit_ > 0) return thread_limit_;
  if (governor_) return governor_->EffectiveThreadBudget();
  return 1;
}

bool TableMorselSource::Next(int worker, idx_t* row_group) {
  // The drain point of reactive governing: budgets are only re-read
  // between morsels, so a budget cut never interrupts in-flight work —
  // it just stops surplus workers from claiming more.
  if (worker > 0 && worker >= EffectiveBudget()) return false;
  idx_t g = next_.fetch_add(1);
  if (g >= row_group_count_) return false;
  claimed_[worker < kMaxWorkers ? worker : 0].fetch_add(1);
  *row_group = g;
  return true;
}

PhysicalMorselScan::PhysicalMorselScan(
    std::shared_ptr<TableMorselSource> source, int worker,
    const DataTable* table, std::vector<idx_t> column_ids,
    std::vector<TableFilter> filters, std::vector<TypeId> types)
    : PhysicalOperator(std::move(types)),
      source_(std::move(source)),
      worker_(worker),
      table_(table),
      column_ids_(std::move(column_ids)),
      filters_(std::move(filters)) {}

Status PhysicalMorselScan::GetChunk(ExecutionContext* context,
                                    DataChunk* out) {
  out->Reset();
  while (true) {
    if (!morsel_active_) {
      idx_t row_group;
      if (!source_->Next(worker_, &row_group)) return Status::OK();
      state_ = TableScanState{};
      state_.column_ids = column_ids_;
      state_.filters = filters_;
      state_.row_group_index = row_group;
      state_.max_row_group = row_group + 1;
      morsel_active_ = true;
    }
    if (table_->Scan(*context->txn, &state_, out)) return Status::OK();
    morsel_active_ = false;  // morsel exhausted; claim the next one
  }
}

std::string PhysicalMorselScan::name() const {
  return "MORSEL_SCAN(" + table_->name() + ", worker " +
         std::to_string(worker_) + ")";
}

namespace parallel {

ParallelRun PlanParallelScan(ExecutionContext* context,
                             const PhysicalOperator* subtree) {
  ParallelRun run;
  if (!context || !context->scheduler || !context->governor) return run;
  const DataTable* table = subtree->ParallelSourceTable();
  if (!table) return run;
  int budget = context->thread_limit > 0
                   ? context->thread_limit
                   : context->governor->EffectiveThreadBudget();
  idx_t groups = table->RowGroupCount();
  int threads = std::min<int>(budget, TableMorselSource::kMaxWorkers);
  threads = static_cast<int>(
      std::min<idx_t>(static_cast<idx_t>(std::max(threads, 1)), groups));
  if (threads <= 1) return run;
  run.threads = threads;
  run.source = std::make_shared<TableMorselSource>(groups, context->governor,
                                                   context->thread_limit);
  return run;
}

std::vector<std::unique_ptr<PhysicalOperator>> CloneWorkers(
    const ParallelRun& run, const PhysicalOperator* subtree) {
  std::vector<std::unique_ptr<PhysicalOperator>> clones;
  for (int w = 0; w < run.threads; w++) {
    ParallelCloneContext ctx{run.source, w};
    auto clone = subtree->MorselClone(ctx);
    if (!clone) return {};
    clones.push_back(std::move(clone));
  }
  return clones;
}

Status RunMorselPipeline(
    ExecutionContext* context, const PhysicalOperator* subtree, bool* ran,
    const std::function<void(idx_t workers)>& prepare,
    const std::function<Status(int worker, PhysicalOperator* scan)>& worker) {
  *ran = false;
  ParallelRun run = PlanParallelScan(context, subtree);
  if (run.threads <= 1) return Status::OK();
  auto clones = CloneWorkers(run, subtree);
  if (clones.empty()) return Status::OK();
  prepare(clones.size());
  auto task = [&](int w) -> Status { return worker(w, clones[w].get()); };
  MALLARD_RETURN_NOT_OK(
      context->scheduler->Run(static_cast<int>(clones.size()), task,
                              /*governed=*/context->thread_limit == 0));
  *ran = true;
  return Status::OK();
}

}  // namespace parallel

}  // namespace mallard
