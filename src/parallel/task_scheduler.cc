#include "mallard/parallel/task_scheduler.h"

#include <algorithm>

#include "mallard/governor/resource_governor.h"

namespace mallard {

TaskScheduler::TaskScheduler(ResourceGovernor* governor)
    : governor_(governor) {}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

int TaskScheduler::pool_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void TaskScheduler::EnsureWorkers(int count) {
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void TaskScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    auto job = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    job();
    lock.lock();
  }
}

namespace {

// No exception may escape into the fork-join machinery (or, on the
// degenerate single-thread path, past it): every task invocation runs
// behind the same Status conversion.
Status RunGuarded(const std::function<Status(int)>& task, int worker) {
  try {
    return task(worker);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("parallel task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("parallel task threw");
  }
}

}  // namespace

Status TaskScheduler::Run(int requested_threads,
                          const std::function<Status(int)>& task,
                          bool governed) {
  int threads = requested_threads;
  if (governed && governor_) {
    threads = std::min(threads, governor_->EffectiveThreadBudget());
  }
  if (threads <= 1) return RunGuarded(task, 0);

  auto state = std::make_shared<RunState>();
  state->remaining = threads - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnsureWorkers(threads - 1);
    for (int w = 1; w < threads; w++) {
      // `task` outlives the job: Run blocks below until remaining == 0.
      queue_.push_back([state, task_ptr = &task, w] {
        Status status = RunGuarded(*task_ptr, w);
        std::lock_guard<std::mutex> guard(state->mutex);
        if (!status.ok() && state->first_error.ok()) {
          state->first_error = status;
        }
        if (--state->remaining == 0) state->done.notify_all();
      });
    }
  }
  work_available_.notify_all();

  Status local = RunGuarded(task, 0);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->remaining == 0; });
  if (!local.ok()) return local;
  return state->first_error;
}

}  // namespace mallard
