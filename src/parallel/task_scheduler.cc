#include "mallard/parallel/task_scheduler.h"

#include <algorithm>

#include "mallard/governor/resource_governor.h"

namespace mallard {

QueryTicket::~QueryTicket() {
  if (scheduler_) scheduler_->Unregister(this);
}

TaskScheduler::TaskScheduler(ResourceGovernor* governor)
    : governor_(governor) {}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

std::unique_ptr<QueryTicket> TaskScheduler::RegisterQuery(uint64_t session_id,
                                                          int weight) {
  weight = std::max(1, weight);
  active_queries_.fetch_add(1);
  active_weight_.fetch_add(weight);
  return std::unique_ptr<QueryTicket>(
      new QueryTicket(this, session_id, weight));
}

void TaskScheduler::Unregister(const QueryTicket* ticket) {
  active_queries_.fetch_sub(1);
  active_weight_.fetch_sub(ticket->weight());
}

int TaskScheduler::FairThreadShare(const QueryTicket* ticket) const {
  int budget = governor_
                   ? governor_->EffectiveThreadBudget()
                   : static_cast<int>(
                         std::max(1u, std::thread::hardware_concurrency()));
  if (!ticket) return budget;
  int active = active_queries_.load();
  int total_weight = active_weight_.load();
  if (active <= 1 || total_weight <= ticket->weight()) return budget;
  // Weighted share, rounded up so weights always buy at least their
  // proportional slice; floored at 1 so every query makes progress.
  int share = static_cast<int>(
      (static_cast<int64_t>(budget) * ticket->weight() + total_weight - 1) /
      total_weight);
  return std::max(1, std::min(share, budget));
}

int TaskScheduler::pool_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

SchedulerStats TaskScheduler::GetStats() const {
  SchedulerStats stats;
  stats.tasks_executed = tasks_executed_.load();
  stats.runs = runs_.load();
  stats.active_queries = active_queries_.load();
  stats.pool_size = pool_size();
  return stats;
}

void TaskScheduler::EnsureWorkers(int count) {
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool TaskScheduler::PopJob(std::function<void()>* job) {
  if (queued_jobs_ == 0) return false;
  // Round-robin across sessions: serve the first non-empty session queue
  // strictly after the one served last, wrapping around. FIFO within a
  // session preserves a query's own fork-join order.
  auto it = queues_.upper_bound(rr_cursor_);
  if (it == queues_.end()) it = queues_.begin();
  rr_cursor_ = it->first;
  *job = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  queued_jobs_--;
  return true;
}

void TaskScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || queued_jobs_ > 0; });
    std::function<void()> job;
    if (!PopJob(&job)) {
      if (shutdown_) return;
      continue;
    }
    lock.unlock();
    job();
    tasks_executed_.fetch_add(1);
    lock.lock();
  }
}

namespace {

// No exception may escape into the fork-join machinery (or, on the
// degenerate single-thread path, past it): every task invocation runs
// behind the same Status conversion.
Status RunGuarded(const std::function<Status(int)>& task, int worker) {
  try {
    return task(worker);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("parallel task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("parallel task threw");
  }
}

}  // namespace

Status TaskScheduler::Run(int requested_threads,
                          const std::function<Status(int)>& task,
                          bool governed, const QueryTicket* ticket) {
  runs_.fetch_add(1);
  int threads = requested_threads;
  if (governed && governor_) {
    threads = std::min(threads, governor_->EffectiveThreadBudget());
  }
  if (governed && ticket) {
    // Inter-query fairness at launch: this query's weighted slice of the
    // budget. The morsel source re-checks the share at every boundary,
    // so an already-launched wide pass also sheds workers when a second
    // query registers mid-flight.
    threads = std::min(threads, FairThreadShare(ticket));
  }
  if (threads <= 1) return RunGuarded(task, 0);

  uint64_t session = ticket ? ticket->session_id() : 0;
  auto state = std::make_shared<RunState>();
  state->remaining = threads - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnsureWorkers(threads - 1);
    auto& queue = queues_[session];
    for (int w = 1; w < threads; w++) {
      // `task` outlives the job: Run blocks below until remaining == 0.
      queue.push_back([state, task_ptr = &task, w] {
        Status status = RunGuarded(*task_ptr, w);
        std::lock_guard<std::mutex> guard(state->mutex);
        if (!status.ok() && state->first_error.ok()) {
          state->first_error = status;
        }
        if (--state->remaining == 0) state->done.notify_all();
      });
    }
    queued_jobs_ += static_cast<size_t>(threads - 1);
  }
  work_available_.notify_all();

  Status local = RunGuarded(task, 0);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->remaining == 0; });
  if (!local.ok()) return local;
  return state->first_error;
}

}  // namespace mallard
