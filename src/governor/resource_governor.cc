#include "mallard/governor/resource_governor.h"

#include <algorithm>
#include <chrono>

#include "mallard/storage/buffer_manager.h"

namespace mallard {

void ResourceGovernor::SetMemoryLimit(uint64_t bytes) {
  config_.dbms_memory_limit = bytes;
  if (buffers_) buffers_->SetMemoryLimit(bytes);
}

uint64_t ResourceGovernor::DbmsMemoryUsed() const {
  return buffers_ ? buffers_->memory_used() : 0;
}

uint64_t ResourceGovernor::EffectiveMemoryBudget() const {
  AppResourceMonitor* monitor = monitor_.load();
  if (!reactive_.load() || !monitor) {
    return config_.dbms_memory_limit;
  }
  uint64_t app = monitor->AppMemoryBytes();
  uint64_t headroom = config_.total_memory / 8;
  uint64_t available =
      config_.total_memory > app + headroom
          ? config_.total_memory - app - headroom
          : config_.total_memory / 64;  // starved: keep a small floor
  return std::min(available, config_.dbms_memory_limit);
}

CompressionLevel ResourceGovernor::ChooseCompressionLevel() const {
  AppResourceMonitor* monitor = monitor_.load();
  if (!reactive_.load() || !monitor) {
    return manual_compression_;
  }
  uint64_t app = monitor->AppMemoryBytes();
  uint64_t dbms = DbmsMemoryUsed();
  double pressure =
      static_cast<double>(app + dbms) / static_cast<double>(config_.total_memory);
  if (pressure < 0.50) return CompressionLevel::kNone;
  if (pressure < 0.75) return CompressionLevel::kLight;
  return CompressionLevel::kHeavy;
}

JoinAlgorithm ResourceGovernor::ChooseJoinAlgorithm(
    uint64_t estimated_build_bytes) const {
  uint64_t budget = EffectiveMemoryBudget();
  // The grace hash join spills radix partitions of the build side, so a
  // build larger than memory is fine — hash stays profitable until the
  // working set dwarfs the budget so badly that partition reloads
  // dominate; beyond 8x, sort-merge's sequential passes win.
  if (budget > UINT64_MAX / 8 || estimated_build_bytes <= budget * 8) {
    return JoinAlgorithm::kHash;
  }
  return JoinAlgorithm::kMerge;
}

int ResourceGovernor::EffectiveThreadBudget() const {
  int cap = max_threads_.load();
  if (cap < 1) cap = 1;
  AppResourceMonitor* monitor = monitor_.load();
  if (!reactive_.load() || !monitor) return cap;
  // Scale the cap by the CPU share the application leaves free, rounding
  // to nearest: an app at 100% CPU squeezes the DBMS down to one worker,
  // an idle app leaves the full cap.
  double free_share = 1.0 - monitor->AppCpuUtilization();
  if (free_share < 0.0) free_share = 0.0;
  int budget = static_cast<int>(cap * free_share + 0.5);
  return std::max(1, std::min(cap, budget));
}

uint64_t ResourceGovernor::WalFlushIntervalMs() const {
  constexpr uint64_t kBaseMs = 5;
  AppResourceMonitor* monitor = monitor_.load();
  if (!reactive_.load() || !monitor) return kBaseMs;
  double cpu = monitor->AppCpuUtilization();
  if (cpu < 0.0) cpu = 0.0;
  if (cpu > 1.0) cpu = 1.0;
  return kBaseMs + static_cast<uint64_t>(cpu * 3.0 * kBaseMs);
}

uint64_t ResourceGovernor::ScrubPauseMicros() const {
  constexpr uint64_t kMaxPauseMicros = 2000;
  AppResourceMonitor* monitor = monitor_.load();
  if (!reactive_.load() || !monitor) return 0;
  double cpu = monitor->AppCpuUtilization();
  if (cpu < 0.0) cpu = 0.0;
  if (cpu > 1.0) cpu = 1.0;
  return static_cast<uint64_t>(cpu * kMaxPauseMicros);
}

int AdmissionController::EffectiveLimit() const {
  int limit = max_active_.load();
  if (limit > 0) return limit;
  // Auto: enough concurrency to keep the pool busy across blocking
  // clients, bounded so a connection storm queues instead of thrashing.
  int threads = governor_ ? governor_->max_threads() : 4;
  return std::max(4, 4 * std::max(1, threads));
}

bool AdmissionController::HasCapacity() const {
  // An idle engine always admits: whatever the budgets say, one query
  // must be able to run or a tight-memory host would wedge forever.
  if (active_ == 0) return true;
  if (active_ >= EffectiveLimit()) return false;
  // Memory saturation gate: with queries already running and the buffer
  // pool at (or beyond) the governor's budget, adding load would only
  // deepen spilling — queue instead.
  if (buffers_ && governor_ &&
      buffers_->memory_used() >= governor_->EffectiveMemoryBudget()) {
    return false;
  }
  return true;
}

bool AdmissionController::IsNextInLine(int cls, uint64_t seq) const {
  for (int higher = cls + 1; higher < kClasses; higher++) {
    if (!waiters_[higher].empty()) return false;
  }
  return !waiters_[cls].empty() && waiters_[cls].front() == seq;
}

Status AdmissionController::Admit(int priority_class) {
  int cls = std::max(0, std::min(priority_class, kClasses - 1));
  std::unique_lock<std::mutex> lock(mutex_);
  // Fast path: capacity free and nobody of equal or higher priority is
  // already queued ahead (a high-priority arrival may overtake queued
  // lower classes — that is what priority means here).
  bool ahead = false;
  for (int c = cls; c < kClasses; c++) {
    if (!waiters_[c].empty()) ahead = true;
  }
  if (!ahead && HasCapacity()) {
    active_++;
    admitted_++;
    return Status::OK();
  }
  if (waiting_ >= queue_depth_.load()) {
    shed_++;
    return Status::ResourceExhausted(
        "admission queue is full (" + std::to_string(waiting_) +
        " queries waiting); shed instead of queueing — retry later or "
        "raise PRAGMA admission_queue_depth");
  }
  uint64_t seq = next_seq_++;
  waiters_[cls].push_back(seq);
  waiting_++;
  queued_++;
  bool got_slot = slot_free_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms_.load()),
      [&] { return HasCapacity() && IsNextInLine(cls, seq); });
  auto& queue = waiters_[cls];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (*it == seq) {
      queue.erase(it);
      break;
    }
  }
  waiting_--;
  if (!got_slot) {
    timeouts_++;
    // Our departure may unblock a waiter behind us in line.
    slot_free_.notify_all();
    return Status::ResourceExhausted(
        "timed out after " + std::to_string(timeout_ms_.load()) +
        " ms waiting for an execution slot (" + std::to_string(active_) +
        " active); retry later or raise PRAGMA admission_timeout_ms");
  }
  active_++;
  admitted_++;
  // More than one slot may have freed; wake the next in line too.
  slot_free_.notify_all();
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_--;
  }
  slot_free_.notify_all();
}

AdmissionStats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionStats stats;
  stats.admitted = admitted_;
  stats.queued = queued_;
  stats.shed = shed_;
  stats.timeouts = timeouts_;
  stats.active = active_;
  stats.waiting = waiting_;
  return stats;
}

GovernorSample ResourceGovernor::Sample() const {
  AppResourceMonitor* monitor = monitor_.load();
  GovernorSample s;
  s.app_memory = monitor ? monitor->AppMemoryBytes() : 0;
  s.dbms_memory = DbmsMemoryUsed();
  s.app_cpu = monitor ? monitor->AppCpuUtilization() : 0.0;
  s.compression = ChooseCompressionLevel();
  s.effective_budget = EffectiveMemoryBudget();
  s.thread_budget = EffectiveThreadBudget();
  return s;
}

}  // namespace mallard
