#include "mallard/governor/resource_governor.h"

#include <algorithm>

#include "mallard/storage/buffer_manager.h"

namespace mallard {

void ResourceGovernor::SetMemoryLimit(uint64_t bytes) {
  config_.dbms_memory_limit = bytes;
  if (buffers_) buffers_->SetMemoryLimit(bytes);
}

uint64_t ResourceGovernor::DbmsMemoryUsed() const {
  return buffers_ ? buffers_->memory_used() : 0;
}

uint64_t ResourceGovernor::EffectiveMemoryBudget() const {
  if (!config_.reactive || !monitor_) {
    return config_.dbms_memory_limit;
  }
  uint64_t app = monitor_->AppMemoryBytes();
  uint64_t headroom = config_.total_memory / 8;
  uint64_t available =
      config_.total_memory > app + headroom
          ? config_.total_memory - app - headroom
          : config_.total_memory / 64;  // starved: keep a small floor
  return std::min(available, config_.dbms_memory_limit);
}

CompressionLevel ResourceGovernor::ChooseCompressionLevel() const {
  if (!config_.reactive || !monitor_) {
    return manual_compression_;
  }
  uint64_t app = monitor_->AppMemoryBytes();
  uint64_t dbms = DbmsMemoryUsed();
  double pressure =
      static_cast<double>(app + dbms) / static_cast<double>(config_.total_memory);
  if (pressure < 0.50) return CompressionLevel::kNone;
  if (pressure < 0.75) return CompressionLevel::kLight;
  return CompressionLevel::kHeavy;
}

JoinAlgorithm ResourceGovernor::ChooseJoinAlgorithm(
    uint64_t estimated_build_bytes) const {
  uint64_t budget = EffectiveMemoryBudget();
  if (estimated_build_bytes <= budget / 2) {
    return JoinAlgorithm::kHash;
  }
  return JoinAlgorithm::kMerge;
}

GovernorSample ResourceGovernor::Sample() const {
  GovernorSample s;
  s.app_memory = monitor_ ? monitor_->AppMemoryBytes() : 0;
  s.dbms_memory = DbmsMemoryUsed();
  s.app_cpu = monitor_ ? monitor_->AppCpuUtilization() : 0.0;
  s.compression = ChooseCompressionLevel();
  s.effective_budget = EffectiveMemoryBudget();
  return s;
}

}  // namespace mallard
