#include "mallard/governor/resource_governor.h"

#include <algorithm>

#include "mallard/storage/buffer_manager.h"

namespace mallard {

void ResourceGovernor::SetMemoryLimit(uint64_t bytes) {
  config_.dbms_memory_limit = bytes;
  if (buffers_) buffers_->SetMemoryLimit(bytes);
}

uint64_t ResourceGovernor::DbmsMemoryUsed() const {
  return buffers_ ? buffers_->memory_used() : 0;
}

uint64_t ResourceGovernor::EffectiveMemoryBudget() const {
  AppResourceMonitor* monitor = monitor_.load();
  if (!reactive_.load() || !monitor) {
    return config_.dbms_memory_limit;
  }
  uint64_t app = monitor->AppMemoryBytes();
  uint64_t headroom = config_.total_memory / 8;
  uint64_t available =
      config_.total_memory > app + headroom
          ? config_.total_memory - app - headroom
          : config_.total_memory / 64;  // starved: keep a small floor
  return std::min(available, config_.dbms_memory_limit);
}

CompressionLevel ResourceGovernor::ChooseCompressionLevel() const {
  AppResourceMonitor* monitor = monitor_.load();
  if (!reactive_.load() || !monitor) {
    return manual_compression_;
  }
  uint64_t app = monitor->AppMemoryBytes();
  uint64_t dbms = DbmsMemoryUsed();
  double pressure =
      static_cast<double>(app + dbms) / static_cast<double>(config_.total_memory);
  if (pressure < 0.50) return CompressionLevel::kNone;
  if (pressure < 0.75) return CompressionLevel::kLight;
  return CompressionLevel::kHeavy;
}

JoinAlgorithm ResourceGovernor::ChooseJoinAlgorithm(
    uint64_t estimated_build_bytes) const {
  uint64_t budget = EffectiveMemoryBudget();
  // The grace hash join spills radix partitions of the build side, so a
  // build larger than memory is fine — hash stays profitable until the
  // working set dwarfs the budget so badly that partition reloads
  // dominate; beyond 8x, sort-merge's sequential passes win.
  if (budget > UINT64_MAX / 8 || estimated_build_bytes <= budget * 8) {
    return JoinAlgorithm::kHash;
  }
  return JoinAlgorithm::kMerge;
}

int ResourceGovernor::EffectiveThreadBudget() const {
  int cap = max_threads_.load();
  if (cap < 1) cap = 1;
  AppResourceMonitor* monitor = monitor_.load();
  if (!reactive_.load() || !monitor) return cap;
  // Scale the cap by the CPU share the application leaves free, rounding
  // to nearest: an app at 100% CPU squeezes the DBMS down to one worker,
  // an idle app leaves the full cap.
  double free_share = 1.0 - monitor->AppCpuUtilization();
  if (free_share < 0.0) free_share = 0.0;
  int budget = static_cast<int>(cap * free_share + 0.5);
  return std::max(1, std::min(cap, budget));
}

uint64_t ResourceGovernor::WalFlushIntervalMs() const {
  constexpr uint64_t kBaseMs = 5;
  AppResourceMonitor* monitor = monitor_.load();
  if (!reactive_.load() || !monitor) return kBaseMs;
  double cpu = monitor->AppCpuUtilization();
  if (cpu < 0.0) cpu = 0.0;
  if (cpu > 1.0) cpu = 1.0;
  return kBaseMs + static_cast<uint64_t>(cpu * 3.0 * kBaseMs);
}

GovernorSample ResourceGovernor::Sample() const {
  AppResourceMonitor* monitor = monitor_.load();
  GovernorSample s;
  s.app_memory = monitor ? monitor->AppMemoryBytes() : 0;
  s.dbms_memory = DbmsMemoryUsed();
  s.app_cpu = monitor ? monitor->AppCpuUtilization() : 0.0;
  s.compression = ChooseCompressionLevel();
  s.effective_budget = EffectiveMemoryBudget();
  s.thread_budget = EffectiveThreadBudget();
  return s;
}

}  // namespace mallard
