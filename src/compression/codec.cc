#include "mallard/compression/codec.h"

#include <cstring>

namespace mallard {

const char* CompressionLevelToString(CompressionLevel level) {
  switch (level) {
    case CompressionLevel::kNone:
      return "none";
    case CompressionLevel::kLight:
      return "light";
    case CompressionLevel::kHeavy:
      return "heavy";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// RLE: [control u8][payload]. control < 128: literal run of control+1
// bytes follows. control >= 128: repeat next byte (control - 128 + 2)
// times (runs of >= 2).
// ---------------------------------------------------------------------------

void RleCodec::Compress(const uint8_t* data, size_t len,
                        std::vector<uint8_t>* out) const {
  out->clear();
  out->reserve(len / 4 + 16);
  size_t i = 0;
  while (i < len) {
    // Measure the run length at i.
    size_t run = 1;
    while (i + run < len && data[i + run] == data[i] && run < 129) run++;
    if (run >= 2) {
      out->push_back(static_cast<uint8_t>(128 + run - 2));
      out->push_back(data[i]);
      i += run;
      continue;
    }
    // Literal run: collect until the next repeat of >= 3 (so short
    // repeats don't fragment literals) or 128 bytes.
    size_t start = i;
    size_t lit = 0;
    while (i + lit < len && lit < 128) {
      size_t r = 1;
      while (i + lit + r < len && data[i + lit + r] == data[i + lit] &&
             r < 3) {
        r++;
      }
      if (r >= 3) break;
      lit += r;
    }
    if (lit > 128) lit = 128;
    out->push_back(static_cast<uint8_t>(lit - 1));
    out->insert(out->end(), data + start, data + start + lit);
    i += lit;
  }
}

Status RleCodec::Decompress(const uint8_t* data, size_t len,
                            std::vector<uint8_t>* out) const {
  out->clear();
  size_t i = 0;
  while (i < len) {
    uint8_t control = data[i++];
    if (control < 128) {
      size_t lit = control + 1;
      if (i + lit > len) return Status::Corruption("rle literal overrun");
      out->insert(out->end(), data + i, data + i + lit);
      i += lit;
    } else {
      if (i >= len) return Status::Corruption("rle run overrun");
      size_t run = control - 128 + 2;
      out->insert(out->end(), run, data[i++]);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LZ77: token stream. Each token: [flags u8] where flag bit i of the next
// 8 items: 0 = literal byte, 1 = match [offset u16][len u8] (len-4, match
// lengths 4..259, offsets 1..65535).
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kLzWindow = 65535;
constexpr size_t kLzMinMatch = 4;
constexpr size_t kLzHashSize = 1 << 16;

inline uint32_t LzHash(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 16;
}
}  // namespace

void LzCodec::Compress(const uint8_t* data, size_t len,
                       std::vector<uint8_t>* out) const {
  out->clear();
  out->reserve(len / 2 + 16);
  std::vector<int64_t> head(kLzHashSize, -1);
  size_t i = 0;
  while (i < len) {
    uint8_t flags = 0;
    size_t flags_pos = out->size();
    out->push_back(0);
    for (int bit = 0; bit < 8 && i < len; bit++) {
      size_t best_len = 0;
      size_t best_off = 0;
      if (i + kLzMinMatch <= len) {
        uint32_t h = LzHash(data + i);
        int64_t cand = head[h];
        if (cand >= 0 && i - cand <= kLzWindow) {
          size_t m = 0;
          size_t max_m = std::min<size_t>(len - i, 259);
          while (m < max_m && data[cand + m] == data[i + m]) m++;
          if (m >= kLzMinMatch) {
            best_len = m;
            best_off = i - cand;
          }
        }
        head[h] = static_cast<int64_t>(i);
      }
      if (best_len >= kLzMinMatch) {
        flags |= uint8_t(1) << bit;
        uint16_t off = static_cast<uint16_t>(best_off);
        out->push_back(static_cast<uint8_t>(off & 0xFF));
        out->push_back(static_cast<uint8_t>(off >> 8));
        out->push_back(static_cast<uint8_t>(best_len - kLzMinMatch));
        // Insert hash entries inside the match to improve later matches.
        size_t end = i + best_len;
        for (size_t j = i + 1; j + kLzMinMatch <= end && j + 4 <= len; j++) {
          head[LzHash(data + j)] = static_cast<int64_t>(j);
        }
        i += best_len;
      } else {
        out->push_back(data[i]);
        i++;
      }
    }
    (*out)[flags_pos] = flags;
  }
}

Status LzCodec::Decompress(const uint8_t* data, size_t len,
                           std::vector<uint8_t>* out) const {
  out->clear();
  size_t i = 0;
  while (i < len) {
    uint8_t flags = data[i++];
    for (int bit = 0; bit < 8 && i < len; bit++) {
      if (flags & (uint8_t(1) << bit)) {
        if (i + 3 > len) return Status::Corruption("lz match overrun");
        uint16_t off = data[i] | (uint16_t(data[i + 1]) << 8);
        size_t match_len = data[i + 2] + kLzMinMatch;
        i += 3;
        if (off == 0 || off > out->size()) {
          return Status::Corruption("lz match offset out of range");
        }
        size_t src = out->size() - off;
        for (size_t j = 0; j < match_len; j++) {
          out->push_back((*out)[src + j]);
        }
      } else {
        out->push_back(data[i++]);
      }
    }
  }
  return Status::OK();
}

const Codec* CodecForLevel(CompressionLevel level) {
  static const RleCodec* rle = new RleCodec();
  static const LzCodec* lz = new LzCodec();
  switch (level) {
    case CompressionLevel::kNone:
      return nullptr;
    case CompressionLevel::kLight:
      return rle;
    case CompressionLevel::kHeavy:
      return lz;
  }
  return nullptr;
}

namespace bitpack {

void Pack(const int64_t* values, size_t count, std::vector<uint8_t>* out) {
  out->clear();
  int64_t min = count ? values[0] : 0;
  int64_t max = count ? values[0] : 0;
  for (size_t i = 1; i < count; i++) {
    min = std::min(min, values[i]);
    max = std::max(max, values[i]);
  }
  uint64_t range = static_cast<uint64_t>(max - min);
  uint8_t bits = 0;
  while (bits < 64 && (range >> bits) != 0) bits++;
  out->resize(8 + 8 + 1);
  uint64_t n = count;
  std::memcpy(out->data(), &n, 8);
  std::memcpy(out->data() + 8, &min, 8);
  (*out)[16] = bits;
  if (bits == 0) return;
  size_t bit_pos = 0;
  out->resize(17 + (count * bits + 7) / 8, 0);
  uint8_t* payload = out->data() + 17;
  for (size_t i = 0; i < count; i++) {
    uint64_t delta = static_cast<uint64_t>(values[i] - min);
    for (uint8_t b = 0; b < bits; b++) {
      if ((delta >> b) & 1) {
        payload[bit_pos / 8] |= uint8_t(1) << (bit_pos % 8);
      }
      bit_pos++;
    }
  }
}

Status Unpack(const uint8_t* data, size_t len, std::vector<int64_t>* out) {
  if (len < 17) return Status::Corruption("bitpack header truncated");
  uint64_t count;
  int64_t min;
  std::memcpy(&count, data, 8);
  std::memcpy(&min, data + 8, 8);
  uint8_t bits = data[16];
  if (bits > 64) return Status::Corruption("bitpack width out of range");
  if (len < 17 + (count * bits + 7) / 8) {
    return Status::Corruption("bitpack payload truncated");
  }
  out->assign(count, min);
  if (bits == 0) return Status::OK();
  const uint8_t* payload = data + 17;
  size_t bit_pos = 0;
  for (size_t i = 0; i < count; i++) {
    uint64_t delta = 0;
    for (uint8_t b = 0; b < bits; b++) {
      if ((payload[bit_pos / 8] >> (bit_pos % 8)) & 1) {
        delta |= uint64_t(1) << b;
      }
      bit_pos++;
    }
    (*out)[i] = min + static_cast<int64_t>(delta);
  }
  return Status::OK();
}

}  // namespace bitpack

}  // namespace mallard
