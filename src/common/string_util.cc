#include "mallard/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mallard {

std::string StringUtil::Upper(const std::string& str) {
  std::string result = str;
  for (auto& c : result) c = static_cast<char>(std::toupper(c));
  return result;
}

std::string StringUtil::Lower(const std::string& str) {
  std::string result = str;
  for (auto& c : result) c = static_cast<char>(std::tolower(c));
  return result;
}

bool StringUtil::CIEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); i++) {
    if (std::tolower(a[i]) != std::tolower(b[i])) return false;
  }
  return true;
}

std::vector<std::string> StringUtil::Split(const std::string& str, char sep) {
  std::vector<std::string> result;
  size_t start = 0;
  while (start <= str.size()) {
    size_t pos = str.find(sep, start);
    if (pos == std::string::npos) {
      result.push_back(str.substr(start));
      break;
    }
    result.push_back(str.substr(start, pos - start));
    start = pos + 1;
  }
  return result;
}

std::string StringUtil::Join(const std::vector<std::string>& parts,
                             const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::string StringUtil::Trim(const std::string& str) {
  size_t begin = 0, end = str.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(str[begin]))) {
    begin++;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(str[end - 1]))) {
    end--;
  }
  return str.substr(begin, end - begin);
}

bool StringUtil::StartsWith(const std::string& str,
                            const std::string& prefix) {
  return str.size() >= prefix.size() &&
         str.compare(0, prefix.size(), prefix) == 0;
}

bool StringUtil::EndsWith(const std::string& str, const std::string& suffix) {
  return str.size() >= suffix.size() &&
         str.compare(str.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StringUtil::Like(const char* str, size_t str_len, const char* pattern,
                      size_t pattern_len) {
  size_t s = 0, p = 0;
  size_t star_p = std::string::npos, star_s = 0;
  while (s < str_len) {
    if (p < pattern_len && (pattern[p] == '_' || pattern[p] == str[s])) {
      s++;
      p++;
    } else if (p < pattern_len && pattern[p] == '%') {
      star_p = p++;
      star_s = s;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      s = ++star_s;
    } else {
      return false;
    }
  }
  while (p < pattern_len && pattern[p] == '%') p++;
  return p == pattern_len;
}

std::string StringUtil::Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result(len, '\0');
  std::vsnprintf(result.data(), len + 1, fmt, args_copy);
  va_end(args_copy);
  return result;
}

}  // namespace mallard
