#include "mallard/common/status.h"

namespace mallard {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTransactionConflict:
      return "Transaction conflict";
    case StatusCode::kTransactionContext:
      return "Transaction context error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kOutOfMemory:
      return "Out of memory";
    case StatusCode::kParser:
      return "Parser error";
    case StatusCode::kBinder:
      return "Binder error";
    case StatusCode::kCatalog:
      return "Catalog error";
    case StatusCode::kConstraint:
      return "Constraint violation";
    case StatusCode::kHardwareFailure:
      return "Hardware failure";
    case StatusCode::kInterrupted:
      return "Interrupted";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other) {
  if (other.state_) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->message : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(state_->code);
  result += ": ";
  result += state_->message;
  return result;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}
Status Status::Corruption(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
Status Status::TransactionConflict(std::string msg) {
  return Status(StatusCode::kTransactionConflict, std::move(msg));
}
Status Status::TransactionContext(std::string msg) {
  return Status(StatusCode::kTransactionContext, std::move(msg));
}
Status Status::NotImplemented(std::string msg) {
  return Status(StatusCode::kNotImplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::OutOfMemory(std::string msg) {
  return Status(StatusCode::kOutOfMemory, std::move(msg));
}
Status Status::Parser(std::string msg) {
  return Status(StatusCode::kParser, std::move(msg));
}
Status Status::Binder(std::string msg) {
  return Status(StatusCode::kBinder, std::move(msg));
}
Status Status::Catalog(std::string msg) {
  return Status(StatusCode::kCatalog, std::move(msg));
}
Status Status::Constraint(std::string msg) {
  return Status(StatusCode::kConstraint, std::move(msg));
}
Status Status::HardwareFailure(std::string msg) {
  return Status(StatusCode::kHardwareFailure, std::move(msg));
}
Status Status::Interrupted(std::string msg) {
  return Status(StatusCode::kInterrupted, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}

}  // namespace mallard
