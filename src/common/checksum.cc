#include "mallard/common/checksum.h"

#include <array>

namespace mallard {

namespace {

// Slicing-by-8 CRC32-C tables, generated at first use. Table generation is
// deterministic; thread-safe via function-local static initialization.
struct Crc32cTables {
  uint32_t table[8][256];
  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      table[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = table[0][i];
      for (int slice = 1; slice < 8; slice++) {
        crc = (crc >> 8) ^ table[0][crc & 0xFF];
        table[slice][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto& t = Tables().table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  // Process unaligned prefix byte-wise.
  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
    len--;
  }
  // Slicing-by-8 main loop.
  while (len >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    word ^= crc;
    crc = t[7][word & 0xFF] ^ t[6][(word >> 8) & 0xFF] ^
          t[5][(word >> 16) & 0xFF] ^ t[4][(word >> 24) & 0xFF] ^
          t[3][(word >> 32) & 0xFF] ^ t[2][(word >> 40) & 0xFF] ^
          t[1][(word >> 48) & 0xFF] ^ t[0][(word >> 56) & 0xFF];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
    len--;
  }
  return ~crc;
}

}  // namespace mallard
