#include "mallard/common/value.h"

#include <cmath>
#include <cstdlib>

#include "mallard/common/hash.h"
#include "mallard/common/string_util.h"

namespace mallard {

Value Value::Boolean(bool value) {
  Value v(TypeId::kBoolean);
  v.is_null_ = false;
  v.value_.boolean = value;
  return v;
}

Value Value::Integer(int32_t value) {
  Value v(TypeId::kInteger);
  v.is_null_ = false;
  v.value_.integer = value;
  return v;
}

Value Value::BigInt(int64_t value) {
  Value v(TypeId::kBigInt);
  v.is_null_ = false;
  v.value_.bigint = value;
  return v;
}

Value Value::Double(double value) {
  Value v(TypeId::kDouble);
  v.is_null_ = false;
  v.value_.float64 = value;
  return v;
}

Value Value::Varchar(std::string value) {
  Value v(TypeId::kVarchar);
  v.is_null_ = false;
  v.string_value_ = std::move(value);
  return v;
}

Value Value::Date(int32_t days) {
  Value v(TypeId::kDate);
  v.is_null_ = false;
  v.value_.integer = days;
  return v;
}

Value Value::Timestamp(int64_t micros) {
  Value v(TypeId::kTimestamp);
  v.is_null_ = false;
  v.value_.bigint = micros;
  return v;
}

Value Value::Numeric(TypeId type, int64_t value) {
  switch (type) {
    case TypeId::kBoolean:
      return Boolean(value != 0);
    case TypeId::kInteger:
      return Integer(static_cast<int32_t>(value));
    case TypeId::kBigInt:
      return BigInt(value);
    case TypeId::kDouble:
      return Double(static_cast<double>(value));
    case TypeId::kDate:
      return Date(static_cast<int32_t>(value));
    case TypeId::kTimestamp:
      return Timestamp(value);
    default:
      return Value(type);
  }
}

int64_t Value::GetAsBigInt() const {
  switch (type_) {
    case TypeId::kBoolean:
      return value_.boolean ? 1 : 0;
    case TypeId::kInteger:
    case TypeId::kDate:
      return value_.integer;
    case TypeId::kBigInt:
    case TypeId::kTimestamp:
      return value_.bigint;
    case TypeId::kDouble:
      return static_cast<int64_t>(value_.float64);
    default:
      return 0;
  }
}

double Value::GetAsDouble() const {
  switch (type_) {
    case TypeId::kBoolean:
      return value_.boolean ? 1.0 : 0.0;
    case TypeId::kInteger:
    case TypeId::kDate:
      return static_cast<double>(value_.integer);
    case TypeId::kBigInt:
    case TypeId::kTimestamp:
      return static_cast<double>(value_.bigint);
    case TypeId::kDouble:
      return value_.float64;
    default:
      return 0.0;
  }
}

Result<Value> Value::CastTo(TypeId target) const {
  if (type_ == target) return *this;
  if (is_null_) return Value::Null(target);
  if (!TypeCanCast(type_, target)) {
    return Status::InvalidArgument(
        StringUtil::Format("cannot cast %s to %s", TypeIdToString(type_),
                           TypeIdToString(target)));
  }
  if (target == TypeId::kVarchar) return Varchar(ToString());
  if (type_ == TypeId::kVarchar) {
    const std::string& s = string_value_;
    switch (target) {
      case TypeId::kBoolean: {
        if (StringUtil::CIEquals(s, "true") || s == "1") return Boolean(true);
        if (StringUtil::CIEquals(s, "false") || s == "0") {
          return Boolean(false);
        }
        return Status::InvalidArgument("cannot cast '" + s + "' to BOOLEAN");
      }
      case TypeId::kInteger:
      case TypeId::kBigInt: {
        char* end = nullptr;
        errno = 0;
        int64_t v = std::strtoll(s.c_str(), &end, 10);
        if (errno != 0 || end == s.c_str() || *end != '\0') {
          return Status::InvalidArgument("cannot cast '" + s +
                                         "' to integer type");
        }
        return Numeric(target, v);
      }
      case TypeId::kDouble: {
        char* end = nullptr;
        errno = 0;
        double v = std::strtod(s.c_str(), &end);
        if (errno != 0 || end == s.c_str() || *end != '\0') {
          return Status::InvalidArgument("cannot cast '" + s + "' to DOUBLE");
        }
        return Double(v);
      }
      case TypeId::kDate: {
        MALLARD_ASSIGN_OR_RETURN(int32_t days, date::FromString(s));
        return Date(days);
      }
      case TypeId::kTimestamp: {
        // Accept "YYYY-MM-DD[ HH:MM:SS]".
        std::string datepart = s.substr(0, s.find(' '));
        MALLARD_ASSIGN_OR_RETURN(int32_t days, date::FromString(datepart));
        int64_t micros = int64_t(days) * 86400000000LL;
        int h = 0, m = 0, sec = 0;
        size_t space = s.find(' ');
        if (space != std::string::npos &&
            std::sscanf(s.c_str() + space + 1, "%d:%d:%d", &h, &m, &sec) >=
                2) {
          micros += (int64_t(h) * 3600 + int64_t(m) * 60 + sec) * 1000000LL;
        }
        return Timestamp(micros);
      }
      default:
        break;
    }
  }
  switch (target) {
    case TypeId::kBoolean:
      return Boolean(GetAsDouble() != 0.0);
    case TypeId::kInteger: {
      if (type_ == TypeId::kDouble) {
        return Integer(static_cast<int32_t>(std::llround(value_.float64)));
      }
      return Integer(static_cast<int32_t>(GetAsBigInt()));
    }
    case TypeId::kBigInt: {
      if (type_ == TypeId::kDouble) {
        return BigInt(std::llround(value_.float64));
      }
      return BigInt(GetAsBigInt());
    }
    case TypeId::kDouble:
      return Double(GetAsDouble());
    case TypeId::kDate: {
      if (type_ == TypeId::kTimestamp) {
        return Date(static_cast<int32_t>(value_.bigint / 86400000000LL));
      }
      return Date(static_cast<int32_t>(GetAsBigInt()));
    }
    case TypeId::kTimestamp: {
      if (type_ == TypeId::kDate) {
        return Timestamp(int64_t(value_.integer) * 86400000000LL);
      }
      return Timestamp(GetAsBigInt());
    }
    default:
      return Status::InvalidArgument("unsupported cast target");
  }
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case TypeId::kBoolean:
      return value_.boolean ? "true" : "false";
    case TypeId::kInteger:
      return std::to_string(value_.integer);
    case TypeId::kBigInt:
      return std::to_string(value_.bigint);
    case TypeId::kDouble: {
      std::string s = StringUtil::Format("%g", value_.float64);
      return s;
    }
    case TypeId::kVarchar:
      return string_value_;
    case TypeId::kDate:
      return date::ToString(value_.integer);
    case TypeId::kTimestamp: {
      int64_t days = value_.bigint / 86400000000LL;
      int64_t rem = value_.bigint % 86400000000LL;
      if (rem < 0) {
        rem += 86400000000LL;
        days -= 1;
      }
      int64_t secs = rem / 1000000;
      return StringUtil::Format(
          "%s %02d:%02d:%02d", date::ToString(static_cast<int32_t>(days)).c_str(),
          static_cast<int>(secs / 3600), static_cast<int>((secs / 60) % 60),
          static_cast<int>(secs % 60));
    }
    default:
      return "INVALID";
  }
}

int Value::Compare(const Value& other) const {
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  switch (type_) {
    case TypeId::kVarchar: {
      int cmp = string_value_.compare(other.string_value_);
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case TypeId::kDouble: {
      double a = GetAsDouble(), b = other.GetAsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      if (other.type_ == TypeId::kDouble) {
        double a = GetAsDouble(), b = other.GetAsDouble();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      int64_t a = GetAsBigInt(), b = other.GetAsBigInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
}

bool Value::operator==(const Value& other) const {
  if (is_null_ || other.is_null_) return is_null_ && other.is_null_;
  return Compare(other) == 0;
}

uint64_t Value::Hash() const {
  if (is_null_) return 0xdeadbeefcafebabeULL;
  switch (type_) {
    case TypeId::kVarchar:
      return HashBytes(string_value_.data(), string_value_.size());
    case TypeId::kDouble: {
      double d = value_.float64;
      // Normalize -0.0 so it hashes like +0.0 (they compare equal).
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt(bits);
    }
    default:
      return HashInt(static_cast<uint64_t>(GetAsBigInt()));
  }
}

}  // namespace mallard
