#include "mallard/common/types.h"

#include <algorithm>
#include <cstring>

#include "mallard/common/string_util.h"

namespace mallard {

const char* TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kInvalid:
      return "INVALID";
    case TypeId::kBoolean:
      return "BOOLEAN";
    case TypeId::kInteger:
      return "INTEGER";
    case TypeId::kBigInt:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kVarchar:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kTimestamp:
      return "TIMESTAMP";
  }
  return "INVALID";
}

Result<TypeId> TypeIdFromString(const std::string& name) {
  std::string upper = StringUtil::Upper(name);
  if (upper == "BOOLEAN" || upper == "BOOL") return TypeId::kBoolean;
  if (upper == "INTEGER" || upper == "INT" || upper == "INT4") {
    return TypeId::kInteger;
  }
  if (upper == "BIGINT" || upper == "INT8" || upper == "LONG") {
    return TypeId::kBigInt;
  }
  if (upper == "DOUBLE" || upper == "FLOAT8" || upper == "REAL" ||
      upper == "FLOAT" || upper == "DECIMAL" || upper == "NUMERIC") {
    return TypeId::kDouble;
  }
  if (upper == "VARCHAR" || upper == "TEXT" || upper == "STRING" ||
      upper == "CHAR") {
    return TypeId::kVarchar;
  }
  if (upper == "DATE") return TypeId::kDate;
  if (upper == "TIMESTAMP" || upper == "DATETIME") return TypeId::kTimestamp;
  return Status::Parser("unknown type name: " + name);
}

idx_t TypeSize(TypeId type) {
  switch (type) {
    case TypeId::kBoolean:
      return 1;
    case TypeId::kInteger:
    case TypeId::kDate:
      return 4;
    case TypeId::kBigInt:
    case TypeId::kDouble:
    case TypeId::kTimestamp:
      return 8;
    case TypeId::kVarchar:
      return sizeof(StringRef);
    case TypeId::kInvalid:
      return 0;
  }
  return 0;
}

bool TypeIsNumeric(TypeId type) {
  return type == TypeId::kInteger || type == TypeId::kBigInt ||
         type == TypeId::kDouble;
}

bool TypeCanCast(TypeId from, TypeId to) {
  if (from == to) return true;
  if (from == TypeId::kInvalid || to == TypeId::kInvalid) return false;
  // Everything casts to and from VARCHAR.
  if (from == TypeId::kVarchar || to == TypeId::kVarchar) return true;
  if (TypeIsNumeric(from) && TypeIsNumeric(to)) return true;
  if (from == TypeId::kBoolean && TypeIsNumeric(to)) return true;
  if (TypeIsNumeric(from) && to == TypeId::kBoolean) return true;
  if (from == TypeId::kDate && to == TypeId::kTimestamp) return true;
  if (from == TypeId::kTimestamp && to == TypeId::kDate) return true;
  // Dates cast to integers (days) for arithmetic convenience.
  if (from == TypeId::kDate && TypeIsNumeric(to)) return true;
  if (TypeIsNumeric(from) && to == TypeId::kDate) return true;
  return false;
}

TypeId MaxNumericType(TypeId left, TypeId right) {
  if (!TypeIsNumeric(left) || !TypeIsNumeric(right)) return TypeId::kInvalid;
  if (left == TypeId::kDouble || right == TypeId::kDouble) {
    return TypeId::kDouble;
  }
  if (left == TypeId::kBigInt || right == TypeId::kBigInt) {
    return TypeId::kBigInt;
  }
  return TypeId::kInteger;
}

bool StringRef::operator==(const StringRef& other) const {
  return size == other.size && std::memcmp(data, other.data, size) == 0;
}

bool StringRef::operator<(const StringRef& other) const {
  int cmp = std::memcmp(data, other.data, std::min(size, other.size));
  if (cmp != 0) return cmp < 0;
  return size < other.size;
}

namespace date {

namespace {
// Days-from-civil algorithm (Howard Hinnant): converts a Gregorian civil
// date to days since 1970-01-01 without iterating over years.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, int64_t* m, int64_t* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t year = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = year + (*m <= 2);
}
}  // namespace

int32_t FromYMD(int32_t year, int32_t month, int32_t day) {
  return static_cast<int32_t>(DaysFromCivil(year, month, day));
}

void ToYMD(int32_t days, int32_t* year, int32_t* month, int32_t* day) {
  int64_t y, m, d;
  CivilFromDays(days, &y, &m, &d);
  *year = static_cast<int32_t>(y);
  *month = static_cast<int32_t>(m);
  *day = static_cast<int32_t>(d);
}

Result<int32_t> FromString(const std::string& str) {
  int32_t y = 0, m = 0, d = 0;
  if (std::sscanf(str.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return Status::Parser("invalid date literal: '" + str + "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::Parser("date out of range: '" + str + "'");
  }
  return FromYMD(y, m, d);
}

std::string ToString(int32_t days) {
  int32_t y, m, d;
  ToYMD(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return std::string(buf);
}

int32_t Year(int32_t days) {
  int32_t y, m, d;
  ToYMD(days, &y, &m, &d);
  return y;
}

int32_t Month(int32_t days) {
  int32_t y, m, d;
  ToYMD(days, &y, &m, &d);
  return m;
}

int32_t Day(int32_t days) {
  int32_t y, m, d;
  ToYMD(days, &y, &m, &d);
  return d;
}

}  // namespace date

}  // namespace mallard
