#include "mallard/expression/expression_executor.h"

#include <algorithm>
#include <cmath>

#include "mallard/common/string_util.h"

namespace mallard {

namespace {

// ---------------------------------------------------------------------------
// Vectorized comparison kernels
// ---------------------------------------------------------------------------

template <typename T, typename Compare>
void CompareLoop(const Vector& left, const Vector& right, idx_t count,
                 Vector* result, Compare cmp) {
  const T* l = left.data<T>();
  const T* r = right.data<T>();
  int8_t* out = result->data<int8_t>();
  if (left.validity().AllValid() && right.validity().AllValid()) {
    for (idx_t i = 0; i < count; i++) {
      out[i] = cmp(l[i], r[i]) ? 1 : 0;
    }
    return;
  }
  for (idx_t i = 0; i < count; i++) {
    if (!left.validity().RowIsValid(i) || !right.validity().RowIsValid(i)) {
      result->validity().SetInvalid(i);
      continue;
    }
    out[i] = cmp(l[i], r[i]) ? 1 : 0;
  }
}

template <typename T>
void CompareDispatchOp(const Vector& left, const Vector& right, idx_t count,
                       CompareOp op, Vector* result) {
  switch (op) {
    case CompareOp::kEqual:
      CompareLoop<T>(left, right, count, result,
                     [](const T& a, const T& b) { return a == b; });
      break;
    case CompareOp::kNotEqual:
      CompareLoop<T>(left, right, count, result,
                     [](const T& a, const T& b) { return !(a == b); });
      break;
    case CompareOp::kLess:
      CompareLoop<T>(left, right, count, result,
                     [](const T& a, const T& b) { return a < b; });
      break;
    case CompareOp::kLessEqual:
      CompareLoop<T>(left, right, count, result,
                     [](const T& a, const T& b) { return !(b < a); });
      break;
    case CompareOp::kGreater:
      CompareLoop<T>(left, right, count, result,
                     [](const T& a, const T& b) { return b < a; });
      break;
    case CompareOp::kGreaterEqual:
      CompareLoop<T>(left, right, count, result,
                     [](const T& a, const T& b) { return !(a < b); });
      break;
  }
}

// VARCHAR comparison that tolerates dictionary inputs on either side by
// gathering through StringAt (no flattening, no string copies).
template <typename Compare>
void CompareVarcharLoop(const Vector& left, const Vector& right, idx_t count,
                        Vector* result, Compare cmp) {
  int8_t* out = result->data<int8_t>();
  for (idx_t i = 0; i < count; i++) {
    if (!left.validity().RowIsValid(i) || !right.validity().RowIsValid(i)) {
      result->validity().SetInvalid(i);
      continue;
    }
    out[i] = cmp(left.StringAt(i), right.StringAt(i)) ? 1 : 0;
  }
}

void CompareVarcharDispatch(const Vector& left, const Vector& right,
                            idx_t count, CompareOp op, Vector* result) {
  if (!left.is_dictionary() && !right.is_dictionary()) {
    CompareDispatchOp<StringRef>(left, right, count, op, result);
    return;
  }
  using S = const StringRef&;
  switch (op) {
    case CompareOp::kEqual:
      CompareVarcharLoop(left, right, count, result,
                         [](S a, S b) { return a == b; });
      break;
    case CompareOp::kNotEqual:
      CompareVarcharLoop(left, right, count, result,
                         [](S a, S b) { return !(a == b); });
      break;
    case CompareOp::kLess:
      CompareVarcharLoop(left, right, count, result,
                         [](S a, S b) { return a < b; });
      break;
    case CompareOp::kLessEqual:
      CompareVarcharLoop(left, right, count, result,
                         [](S a, S b) { return !(b < a); });
      break;
    case CompareOp::kGreater:
      CompareVarcharLoop(left, right, count, result,
                         [](S a, S b) { return b < a; });
      break;
    case CompareOp::kGreaterEqual:
      CompareVarcharLoop(left, right, count, result,
                         [](S a, S b) { return !(a < b); });
      break;
  }
}

/// Compares a dictionary VARCHAR vector against one constant: the
/// constant is located in the sorted dictionary once (binary search) and
/// every row then compares bit-packed codes against an index range.
void CompareDictWithConstant(const Vector& dict_vec, const Value& constant,
                             idx_t count, CompareOp op, Vector* result) {
  int8_t* out = result->data<int8_t>();
  if (constant.is_null()) {
    for (idx_t i = 0; i < count; i++) result->validity().SetInvalid(i);
    return;
  }
  const auto& entries = dict_vec.dictionary().entries;
  const std::string& s = constant.GetString();
  StringRef ref(s.data(), static_cast<uint32_t>(s.size()));
  uint32_t lower = static_cast<uint32_t>(
      std::lower_bound(entries.begin(), entries.end(), ref) - entries.begin());
  uint32_t upper = static_cast<uint32_t>(
      std::upper_bound(entries.begin(), entries.end(), ref) - entries.begin());
  // Pass iff lo <= code < hi, possibly inverted.
  uint32_t lo = 0, hi = 0;
  bool invert = false;
  switch (op) {
    case CompareOp::kEqual:
      lo = lower;
      hi = upper;
      break;
    case CompareOp::kNotEqual:
      lo = lower;
      hi = upper;
      invert = true;
      break;
    case CompareOp::kLess:
      lo = 0;
      hi = lower;
      break;
    case CompareOp::kLessEqual:
      lo = 0;
      hi = upper;
      break;
    case CompareOp::kGreater:
      lo = upper;
      hi = static_cast<uint32_t>(entries.size());
      break;
    case CompareOp::kGreaterEqual:
      lo = lower;
      hi = static_cast<uint32_t>(entries.size());
      break;
  }
  const uint32_t* codes = dict_vec.data<uint32_t>();
  for (idx_t i = 0; i < count; i++) {
    if (!dict_vec.validity().RowIsValid(i)) {
      result->validity().SetInvalid(i);
      continue;
    }
    bool in = codes[i] >= lo && codes[i] < hi;
    out[i] = (in != invert) ? 1 : 0;
  }
}

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLess:
      return CompareOp::kGreater;
    case CompareOp::kLessEqual:
      return CompareOp::kGreaterEqual;
    case CompareOp::kGreater:
      return CompareOp::kLess;
    case CompareOp::kGreaterEqual:
      return CompareOp::kLessEqual;
    default:
      return op;
  }
}

bool IsConstantClass(const BoundExpression& expr) {
  return expr.expr_class() == ExprClass::kConstant ||
         expr.expr_class() == ExprClass::kParameter;
}

Status CompareVectors(const Vector& left, const Vector& right, idx_t count,
                      CompareOp op, Vector* result) {
  switch (left.type()) {
    case TypeId::kBoolean:
      CompareDispatchOp<int8_t>(left, right, count, op, result);
      break;
    case TypeId::kInteger:
    case TypeId::kDate:
      CompareDispatchOp<int32_t>(left, right, count, op, result);
      break;
    case TypeId::kBigInt:
    case TypeId::kTimestamp:
      CompareDispatchOp<int64_t>(left, right, count, op, result);
      break;
    case TypeId::kDouble:
      CompareDispatchOp<double>(left, right, count, op, result);
      break;
    case TypeId::kVarchar:
      CompareVarcharDispatch(left, right, count, op, result);
      break;
    default:
      return Status::Internal("comparison on invalid type");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Vectorized arithmetic kernels
// ---------------------------------------------------------------------------

template <typename T>
Status ArithLoop(const Vector& left, const Vector& right, idx_t count,
                 ArithOp op, Vector* result) {
  const T* l = left.data<T>();
  const T* r = right.data<T>();
  T* out = result->data<T>();
  for (idx_t i = 0; i < count; i++) {
    if (!left.validity().RowIsValid(i) || !right.validity().RowIsValid(i)) {
      result->validity().SetInvalid(i);
      continue;
    }
    switch (op) {
      case ArithOp::kAdd:
        out[i] = l[i] + r[i];
        break;
      case ArithOp::kSubtract:
        out[i] = l[i] - r[i];
        break;
      case ArithOp::kMultiply:
        out[i] = l[i] * r[i];
        break;
      case ArithOp::kDivide:
        if constexpr (std::is_integral_v<T>) {
          if (r[i] == 0) {
            result->validity().SetInvalid(i);  // SQL NULL on x/0
            continue;
          }
        }
        out[i] = l[i] / r[i];
        break;
      case ArithOp::kModulo:
        if constexpr (std::is_integral_v<T>) {
          if (r[i] == 0) {
            result->validity().SetInvalid(i);
            continue;
          }
          out[i] = l[i] % r[i];
        } else {
          out[i] = static_cast<T>(
              std::fmod(static_cast<double>(l[i]), static_cast<double>(r[i])));
        }
        break;
    }
  }
  return Status::OK();
}

// Casting kernel: per-row via boxed values for cross-type pairs that are
// rare, with fast paths for the numeric lattice.
template <typename Src, typename Dst>
void NumericCastLoop(const Vector& in, idx_t count, Vector* out) {
  const Src* src = in.data<Src>();
  Dst* dst = out->data<Dst>();
  for (idx_t i = 0; i < count; i++) {
    if (!in.validity().RowIsValid(i)) {
      out->validity().SetInvalid(i);
      continue;
    }
    dst[i] = static_cast<Dst>(src[i]);
  }
}

Status CastVector(const Vector& in, idx_t count, Vector* out) {
  TypeId from = in.type(), to = out->type();
  if (from == to) {
    out->CopyFrom(in, count);
    return Status::OK();
  }
  auto slow_path = [&]() -> Status {
    for (idx_t i = 0; i < count; i++) {
      MALLARD_ASSIGN_OR_RETURN(Value v, in.GetValue(i).CastTo(to));
      out->SetValue(i, v);
    }
    return Status::OK();
  };
  switch (from) {
    case TypeId::kInteger:
      if (to == TypeId::kBigInt) {
        NumericCastLoop<int32_t, int64_t>(in, count, out);
        return Status::OK();
      }
      if (to == TypeId::kDouble) {
        NumericCastLoop<int32_t, double>(in, count, out);
        return Status::OK();
      }
      return slow_path();
    case TypeId::kBigInt:
      if (to == TypeId::kDouble) {
        NumericCastLoop<int64_t, double>(in, count, out);
        return Status::OK();
      }
      return slow_path();
    default:
      return slow_path();
  }
}

// Converts a boolean vector to 3-valued-logic state: 1 true, 0 false,
// -1 null.
inline int8_t BoolState(const Vector& v, idx_t i) {
  if (!v.validity().RowIsValid(i)) return -1;
  return v.data<int8_t>()[i] ? 1 : 0;
}

}  // namespace

std::string BoundComparison::ToString() const {
  static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
  return "(" + left_->ToString() + " " + kOps[static_cast<int>(op_)] + " " +
         right_->ToString() + ")";
}

std::string BoundConjunction::ToString() const {
  std::string result = "(";
  for (size_t i = 0; i < children_.size(); i++) {
    if (i > 0) result += is_and_ ? " AND " : " OR ";
    result += children_[i]->ToString();
  }
  return result + ")";
}

std::string BoundArithmetic::ToString() const {
  static const char* kOps[] = {"+", "-", "*", "/", "%"};
  return "(" + left_->ToString() + " " + kOps[static_cast<int>(op_)] + " " +
         right_->ToString() + ")";
}

std::string BoundFunction::ToString() const {
  std::string result = name_ + "(";
  for (size_t i = 0; i < args_.size(); i++) {
    if (i > 0) result += ", ";
    result += args_[i]->ToString();
  }
  return result + ")";
}

std::string BoundCast::ToString() const {
  return "CAST(" + child_->ToString() + " AS " +
         TypeIdToString(return_type()) + ")";
}

std::string BoundIsNull::ToString() const {
  return child_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
}

std::string BoundNot::ToString() const {
  return "NOT " + child_->ToString();
}

std::string BoundCase::ToString() const {
  std::string result = "CASE";
  for (const auto& c : clauses_) {
    result += " WHEN " + c.when->ToString() + " THEN " + c.then->ToString();
  }
  if (else_) result += " ELSE " + else_->ToString();
  return result + " END";
}

std::string BoundInList::ToString() const {
  std::string result = child_->ToString() + (negated_ ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < values_.size(); i++) {
    if (i > 0) result += ", ";
    result += values_[i].ToString();
  }
  return result + ")";
}

std::string BoundLike::ToString() const {
  return child_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "'";
}

Result<Value> BoundParameter::GetValue() const {
  if (!data_ || index_ >= data_->values.size() || !data_->is_set[index_]) {
    return Status::InvalidArgument(
        "prepared statement parameter $" + std::to_string(index_ + 1) +
        " has not been bound");
  }
  Value value = data_->values[index_];
  TypeId target = return_type();
  if (target == TypeId::kInvalid) return value;
  if (value.is_null()) return Value::Null(target);
  if (value.type() == target) return value;
  return value.CastTo(target);
}

Status ExpressionExecutor::Execute(const BoundExpression& expr,
                                   const DataChunk& input, Vector* result) {
  idx_t count = input.size();
  switch (expr.expr_class()) {
    case ExprClass::kConstant: {
      const auto& e = static_cast<const BoundConstant&>(expr);
      for (idx_t i = 0; i < count; i++) {
        result->SetValue(i, e.value());
      }
      return Status::OK();
    }
    case ExprClass::kColumnRef: {
      const auto& e = static_cast<const BoundColumnRef&>(expr);
      result->Reference(input.column(e.index()));
      return Status::OK();
    }
    case ExprClass::kComparison: {
      const auto& e = static_cast<const BoundComparison&>(expr);
      Vector left(e.left().return_type());
      Vector right(e.right().return_type());
      MALLARD_RETURN_NOT_OK(Execute(e.left(), input, &left));
      MALLARD_RETURN_NOT_OK(Execute(e.right(), input, &right));
      // Dictionary fast path: column vs constant translates the constant
      // into code space once instead of gathering strings per row.
      if (count > 0 && left.type() == TypeId::kVarchar) {
        if (left.is_dictionary() && IsConstantClass(e.right())) {
          CompareDictWithConstant(left, right.GetValue(0), count, e.op(),
                                  result);
          return Status::OK();
        }
        if (right.is_dictionary() && IsConstantClass(e.left())) {
          CompareDictWithConstant(right, left.GetValue(0), count,
                                  MirrorOp(e.op()), result);
          return Status::OK();
        }
      }
      return CompareVectors(left, right, count, e.op(), result);
    }
    case ExprClass::kConjunction: {
      const auto& e = static_cast<const BoundConjunction&>(expr);
      // 3-valued logic accumulation.
      std::vector<int8_t> state(count, e.is_and() ? 1 : 0);
      for (const auto& child : e.children()) {
        Vector v(TypeId::kBoolean);
        MALLARD_RETURN_NOT_OK(Execute(*child, input, &v));
        for (idx_t i = 0; i < count; i++) {
          int8_t s = BoolState(v, i);
          if (e.is_and()) {
            // AND: false dominates, then null.
            if (state[i] == 0 || s == 0) {
              state[i] = 0;
            } else if (state[i] == -1 || s == -1) {
              state[i] = -1;
            }
          } else {
            // OR: true dominates, then null.
            if (state[i] == 1 || s == 1) {
              state[i] = 1;
            } else if (state[i] == -1 || s == -1) {
              state[i] = -1;
            }
          }
        }
      }
      int8_t* out = result->data<int8_t>();
      for (idx_t i = 0; i < count; i++) {
        if (state[i] == -1) {
          result->validity().SetInvalid(i);
        } else {
          out[i] = state[i];
        }
      }
      return Status::OK();
    }
    case ExprClass::kArithmetic: {
      const auto& e = static_cast<const BoundArithmetic&>(expr);
      Vector left(e.left().return_type());
      Vector right(e.right().return_type());
      MALLARD_RETURN_NOT_OK(Execute(e.left(), input, &left));
      MALLARD_RETURN_NOT_OK(Execute(e.right(), input, &right));
      switch (expr.return_type()) {
        case TypeId::kInteger:
          return ArithLoop<int32_t>(left, right, count, e.op(), result);
        case TypeId::kBigInt:
          return ArithLoop<int64_t>(left, right, count, e.op(), result);
        case TypeId::kDouble:
          return ArithLoop<double>(left, right, count, e.op(), result);
        default:
          return Status::Internal("arithmetic on non-numeric type");
      }
    }
    case ExprClass::kFunction: {
      const auto& e = static_cast<const BoundFunction&>(expr);
      std::vector<Vector> arg_vectors;
      arg_vectors.reserve(e.args().size());
      for (const auto& arg : e.args()) {
        arg_vectors.emplace_back(arg->return_type());
      }
      std::vector<Vector*> arg_ptrs;
      for (idx_t i = 0; i < e.args().size(); i++) {
        MALLARD_RETURN_NOT_OK(Execute(*e.args()[i], input, &arg_vectors[i]));
        arg_ptrs.push_back(&arg_vectors[i]);
      }
      return e.impl()(arg_ptrs, count, result);
    }
    case ExprClass::kCast: {
      const auto& e = static_cast<const BoundCast&>(expr);
      Vector child(e.child().return_type());
      MALLARD_RETURN_NOT_OK(Execute(e.child(), input, &child));
      return CastVector(child, count, result);
    }
    case ExprClass::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      Vector child(e.child().return_type());
      MALLARD_RETURN_NOT_OK(Execute(e.child(), input, &child));
      int8_t* out = result->data<int8_t>();
      for (idx_t i = 0; i < count; i++) {
        bool is_null = !child.validity().RowIsValid(i);
        out[i] = (is_null != e.negated()) ? 1 : 0;
      }
      return Status::OK();
    }
    case ExprClass::kNot: {
      const auto& e = static_cast<const BoundNot&>(expr);
      Vector child(TypeId::kBoolean);
      MALLARD_RETURN_NOT_OK(Execute(e.child(), input, &child));
      int8_t* out = result->data<int8_t>();
      for (idx_t i = 0; i < count; i++) {
        if (!child.validity().RowIsValid(i)) {
          result->validity().SetInvalid(i);
        } else {
          out[i] = child.data<int8_t>()[i] ? 0 : 1;
        }
      }
      return Status::OK();
    }
    case ExprClass::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      std::vector<bool> decided(count, false);
      for (const auto& clause : e.clauses()) {
        Vector when(TypeId::kBoolean);
        MALLARD_RETURN_NOT_OK(Execute(*clause.when, input, &when));
        Vector then(expr.return_type());
        MALLARD_RETURN_NOT_OK(Execute(*clause.then, input, &then));
        for (idx_t i = 0; i < count; i++) {
          if (decided[i]) continue;
          if (BoolState(when, i) == 1) {
            decided[i] = true;
            if (then.validity().RowIsValid(i)) {
              result->SetValue(i, then.GetValue(i));
            } else {
              result->validity().SetInvalid(i);
            }
          }
        }
      }
      Vector else_vec(expr.return_type());
      if (e.else_expr()) {
        MALLARD_RETURN_NOT_OK(Execute(*e.else_expr(), input, &else_vec));
      }
      for (idx_t i = 0; i < count; i++) {
        if (decided[i]) continue;
        if (e.else_expr() && else_vec.validity().RowIsValid(i)) {
          result->SetValue(i, else_vec.GetValue(i));
        } else {
          result->validity().SetInvalid(i);
        }
      }
      return Status::OK();
    }
    case ExprClass::kInList: {
      const auto& e = static_cast<const BoundInList&>(expr);
      Vector child(e.child().return_type());
      MALLARD_RETURN_NOT_OK(Execute(e.child(), input, &child));
      int8_t* out = result->data<int8_t>();
      for (idx_t i = 0; i < count; i++) {
        if (!child.validity().RowIsValid(i)) {
          result->validity().SetInvalid(i);
          continue;
        }
        Value v = child.GetValue(i);
        bool found = false;
        for (const auto& candidate : e.values()) {
          if (v == candidate) {
            found = true;
            break;
          }
        }
        out[i] = (found != e.negated()) ? 1 : 0;
      }
      return Status::OK();
    }
    case ExprClass::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      Vector child(TypeId::kVarchar);
      MALLARD_RETURN_NOT_OK(Execute(e.child(), input, &child));
      int8_t* out = result->data<int8_t>();
      if (child.is_dictionary()) {
        // Match each distinct dictionary entry at most once, then fan
        // the verdict out to rows by code.
        const auto& entries = child.dictionary().entries;
        const uint32_t* codes = child.data<uint32_t>();
        std::vector<int8_t> memo(entries.size(), -1);
        for (idx_t i = 0; i < count; i++) {
          if (!child.validity().RowIsValid(i)) {
            result->validity().SetInvalid(i);
            continue;
          }
          uint32_t code = codes[i];
          if (memo[code] < 0) {
            memo[code] = StringUtil::Like(entries[code].data,
                                          entries[code].size,
                                          e.pattern().data(),
                                          e.pattern().size())
                             ? 1
                             : 0;
          }
          out[i] = ((memo[code] != 0) != e.negated()) ? 1 : 0;
        }
        return Status::OK();
      }
      const StringRef* strs = child.data<StringRef>();
      for (idx_t i = 0; i < count; i++) {
        if (!child.validity().RowIsValid(i)) {
          result->validity().SetInvalid(i);
          continue;
        }
        bool match = StringUtil::Like(strs[i].data, strs[i].size,
                                      e.pattern().data(), e.pattern().size());
        out[i] = (match != e.negated()) ? 1 : 0;
      }
      return Status::OK();
    }
    case ExprClass::kParameter: {
      const auto& e = static_cast<const BoundParameter&>(expr);
      MALLARD_ASSIGN_OR_RETURN(Value v, e.GetValue());
      for (idx_t i = 0; i < count; i++) {
        result->SetValue(i, v);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown expression class");
}

Result<idx_t> ExpressionExecutor::Select(const BoundExpression& expr,
                                         const DataChunk& input,
                                         uint32_t* sel) {
  Vector result(TypeId::kBoolean);
  MALLARD_RETURN_NOT_OK(Execute(expr, input, &result));
  const int8_t* data = result.data<int8_t>();
  idx_t m = 0;
  if (result.validity().AllValid()) {
    for (idx_t i = 0; i < input.size(); i++) {
      if (data[i]) sel[m++] = static_cast<uint32_t>(i);
    }
  } else {
    for (idx_t i = 0; i < input.size(); i++) {
      if (result.validity().RowIsValid(i) && data[i]) {
        sel[m++] = static_cast<uint32_t>(i);
      }
    }
  }
  return m;
}

Result<Value> ExpressionExecutor::ExecuteScalar(const BoundExpression& expr,
                                                const std::vector<Value>& row) {
  switch (expr.expr_class()) {
    case ExprClass::kConstant:
      return static_cast<const BoundConstant&>(expr).value();
    case ExprClass::kColumnRef: {
      const auto& e = static_cast<const BoundColumnRef&>(expr);
      return row[e.index()];
    }
    case ExprClass::kComparison: {
      const auto& e = static_cast<const BoundComparison&>(expr);
      MALLARD_ASSIGN_OR_RETURN(Value l, ExecuteScalar(e.left(), row));
      MALLARD_ASSIGN_OR_RETURN(Value r, ExecuteScalar(e.right(), row));
      if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBoolean);
      int cmp = l.Compare(r);
      bool v = false;
      switch (e.op()) {
        case CompareOp::kEqual:
          v = cmp == 0;
          break;
        case CompareOp::kNotEqual:
          v = cmp != 0;
          break;
        case CompareOp::kLess:
          v = cmp < 0;
          break;
        case CompareOp::kLessEqual:
          v = cmp <= 0;
          break;
        case CompareOp::kGreater:
          v = cmp > 0;
          break;
        case CompareOp::kGreaterEqual:
          v = cmp >= 0;
          break;
      }
      return Value::Boolean(v);
    }
    case ExprClass::kConjunction: {
      const auto& e = static_cast<const BoundConjunction&>(expr);
      int8_t state = e.is_and() ? 1 : 0;
      for (const auto& child : e.children()) {
        MALLARD_ASSIGN_OR_RETURN(Value v, ExecuteScalar(*child, row));
        int8_t s = v.is_null() ? -1 : (v.GetBoolean() ? 1 : 0);
        if (e.is_and()) {
          if (state == 0 || s == 0) {
            state = 0;
          } else if (state == -1 || s == -1) {
            state = -1;
          }
        } else {
          if (state == 1 || s == 1) {
            state = 1;
          } else if (state == -1 || s == -1) {
            state = -1;
          }
        }
      }
      if (state == -1) return Value::Null(TypeId::kBoolean);
      return Value::Boolean(state == 1);
    }
    case ExprClass::kArithmetic: {
      const auto& e = static_cast<const BoundArithmetic&>(expr);
      MALLARD_ASSIGN_OR_RETURN(Value l, ExecuteScalar(e.left(), row));
      MALLARD_ASSIGN_OR_RETURN(Value r, ExecuteScalar(e.right(), row));
      if (l.is_null() || r.is_null()) return Value::Null(expr.return_type());
      if (expr.return_type() == TypeId::kDouble) {
        double a = l.GetAsDouble(), b = r.GetAsDouble();
        switch (e.op()) {
          case ArithOp::kAdd:
            return Value::Double(a + b);
          case ArithOp::kSubtract:
            return Value::Double(a - b);
          case ArithOp::kMultiply:
            return Value::Double(a * b);
          case ArithOp::kDivide:
            return Value::Double(a / b);
          case ArithOp::kModulo:
            return Value::Double(std::fmod(a, b));
        }
      }
      int64_t a = l.GetAsBigInt(), b = r.GetAsBigInt();
      int64_t v = 0;
      switch (e.op()) {
        case ArithOp::kAdd:
          v = a + b;
          break;
        case ArithOp::kSubtract:
          v = a - b;
          break;
        case ArithOp::kMultiply:
          v = a * b;
          break;
        case ArithOp::kDivide:
          if (b == 0) return Value::Null(expr.return_type());
          v = a / b;
          break;
        case ArithOp::kModulo:
          if (b == 0) return Value::Null(expr.return_type());
          v = a % b;
          break;
      }
      return Value::Numeric(expr.return_type(), v);
    }
    case ExprClass::kCast: {
      const auto& e = static_cast<const BoundCast&>(expr);
      MALLARD_ASSIGN_OR_RETURN(Value v, ExecuteScalar(e.child(), row));
      return v.CastTo(expr.return_type());
    }
    case ExprClass::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      MALLARD_ASSIGN_OR_RETURN(Value v, ExecuteScalar(e.child(), row));
      return Value::Boolean(v.is_null() != e.negated());
    }
    case ExprClass::kNot: {
      const auto& e = static_cast<const BoundNot&>(expr);
      MALLARD_ASSIGN_OR_RETURN(Value v, ExecuteScalar(e.child(), row));
      if (v.is_null()) return Value::Null(TypeId::kBoolean);
      return Value::Boolean(!v.GetBoolean());
    }
    case ExprClass::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      for (const auto& clause : e.clauses()) {
        MALLARD_ASSIGN_OR_RETURN(Value w, ExecuteScalar(*clause.when, row));
        if (!w.is_null() && w.GetBoolean()) {
          return ExecuteScalar(*clause.then, row);
        }
      }
      if (e.else_expr()) return ExecuteScalar(*e.else_expr(), row);
      return Value::Null(expr.return_type());
    }
    case ExprClass::kInList: {
      const auto& e = static_cast<const BoundInList&>(expr);
      MALLARD_ASSIGN_OR_RETURN(Value v, ExecuteScalar(e.child(), row));
      if (v.is_null()) return Value::Null(TypeId::kBoolean);
      bool found = false;
      for (const auto& candidate : e.values()) {
        if (v == candidate) {
          found = true;
          break;
        }
      }
      return Value::Boolean(found != e.negated());
    }
    case ExprClass::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      MALLARD_ASSIGN_OR_RETURN(Value v, ExecuteScalar(e.child(), row));
      if (v.is_null()) return Value::Null(TypeId::kBoolean);
      const std::string& s = v.GetString();
      bool match = StringUtil::Like(s.data(), s.size(), e.pattern().data(),
                                    e.pattern().size());
      return Value::Boolean(match != e.negated());
    }
    case ExprClass::kFunction: {
      // Route scalar evaluation through the vectorized implementation on a
      // one-row chunk so both engines share function semantics.
      const auto& e = static_cast<const BoundFunction&>(expr);
      std::vector<Vector> arg_vectors;
      std::vector<Vector*> arg_ptrs;
      for (const auto& arg : e.args()) {
        MALLARD_ASSIGN_OR_RETURN(Value v, ExecuteScalar(*arg, row));
        arg_vectors.emplace_back(arg->return_type());
      }
      for (idx_t i = 0; i < e.args().size(); i++) {
        MALLARD_ASSIGN_OR_RETURN(Value v, ExecuteScalar(*e.args()[i], row));
        arg_vectors[i].SetValue(0, v);
        arg_ptrs.push_back(&arg_vectors[i]);
      }
      Vector result(expr.return_type());
      MALLARD_RETURN_NOT_OK(e.impl()(arg_ptrs, 1, &result));
      return result.GetValue(0);
    }
    case ExprClass::kParameter:
      return static_cast<const BoundParameter&>(expr).GetValue();
  }
  return Status::Internal("unknown expression class");
}

}  // namespace mallard
