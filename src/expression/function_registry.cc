#include "mallard/expression/function_registry.h"

#include <cmath>

#include "mallard/common/string_util.h"

namespace mallard {

namespace {

// Applies a scalar kernel with standard NULL propagation over one arg.
template <typename Fn>
Status UnaryKernel(const std::vector<Vector*>& args, idx_t count,
                   Vector* result, Fn fn) {
  const Vector& a = *args[0];
  for (idx_t i = 0; i < count; i++) {
    if (!a.validity().RowIsValid(i)) {
      result->validity().SetInvalid(i);
      continue;
    }
    fn(a, i, result);
  }
  return Status::OK();
}

Status YearImpl(const std::vector<Vector*>& args, idx_t count,
                Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       out->data<int32_t>()[i] =
                           date::Year(a.data<int32_t>()[i]);
                     });
}

Status MonthImpl(const std::vector<Vector*>& args, idx_t count,
                 Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       out->data<int32_t>()[i] =
                           date::Month(a.data<int32_t>()[i]);
                     });
}

Status DayImpl(const std::vector<Vector*>& args, idx_t count,
               Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       out->data<int32_t>()[i] =
                           date::Day(a.data<int32_t>()[i]);
                     });
}

Status LengthImpl(const std::vector<Vector*>& args, idx_t count,
                  Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       out->data<int64_t>()[i] = a.StringAt(i).size;
                     });
}

Status LowerImpl(const std::vector<Vector*>& args, idx_t count,
                 Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       std::string s = a.StringAt(i).ToString();
                       out->SetString(i, StringUtil::Lower(s));
                     });
}

Status UpperImpl(const std::vector<Vector*>& args, idx_t count,
                 Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       std::string s = a.StringAt(i).ToString();
                       out->SetString(i, StringUtil::Upper(s));
                     });
}

Status AbsIntImpl(const std::vector<Vector*>& args, idx_t count,
                  Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       int64_t v = a.data<int64_t>()[i];
                       out->data<int64_t>()[i] = v < 0 ? -v : v;
                     });
}

Status AbsDoubleImpl(const std::vector<Vector*>& args, idx_t count,
                     Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       out->data<double>()[i] = std::fabs(a.data<double>()[i]);
                     });
}

Status FloorImpl(const std::vector<Vector*>& args, idx_t count,
                 Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       out->data<double>()[i] =
                           std::floor(a.data<double>()[i]);
                     });
}

Status CeilImpl(const std::vector<Vector*>& args, idx_t count,
                Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       out->data<double>()[i] = std::ceil(a.data<double>()[i]);
                     });
}

Status SqrtImpl(const std::vector<Vector*>& args, idx_t count,
                Vector* result) {
  return UnaryKernel(args, count, result,
                     [](const Vector& a, idx_t i, Vector* out) {
                       out->data<double>()[i] = std::sqrt(a.data<double>()[i]);
                     });
}

Status RoundImpl(const std::vector<Vector*>& args, idx_t count,
                 Vector* result) {
  const Vector& a = *args[0];
  const Vector& digits = *args[1];
  for (idx_t i = 0; i < count; i++) {
    if (!a.validity().RowIsValid(i) || !digits.validity().RowIsValid(i)) {
      result->validity().SetInvalid(i);
      continue;
    }
    double scale = std::pow(10.0, digits.data<int32_t>()[i]);
    result->data<double>()[i] =
        std::round(a.data<double>()[i] * scale) / scale;
  }
  return Status::OK();
}

Status SubstrImpl(const std::vector<Vector*>& args, idx_t count,
                  Vector* result) {
  const Vector& a = *args[0];
  const Vector& start = *args[1];
  const Vector& len = *args[2];
  for (idx_t i = 0; i < count; i++) {
    if (!a.validity().RowIsValid(i) || !start.validity().RowIsValid(i) ||
        !len.validity().RowIsValid(i)) {
      result->validity().SetInvalid(i);
      continue;
    }
    StringRef s = a.StringAt(i);
    // SQL substring: 1-based start.
    int64_t begin = std::max<int64_t>(1, start.data<int32_t>()[i]) - 1;
    int64_t n = std::max<int64_t>(0, len.data<int32_t>()[i]);
    if (begin >= s.size) {
      result->SetString(i, "", 0);
      continue;
    }
    n = std::min<int64_t>(n, s.size - begin);
    result->SetString(i, s.data + begin, static_cast<uint32_t>(n));
  }
  return Status::OK();
}

Status ConcatImpl(const std::vector<Vector*>& args, idx_t count,
                  Vector* result) {
  for (idx_t i = 0; i < count; i++) {
    std::string out;
    bool any_null = false;
    for (const Vector* arg : args) {
      if (!arg->validity().RowIsValid(i)) {
        any_null = true;
        break;
      }
      out += arg->StringAt(i).ToString();
    }
    if (any_null) {
      result->validity().SetInvalid(i);
    } else {
      result->SetString(i, out);
    }
  }
  return Status::OK();
}

Status ContainsImpl(const std::vector<Vector*>& args, idx_t count,
                    Vector* result) {
  const Vector& a = *args[0];
  const Vector& b = *args[1];
  for (idx_t i = 0; i < count; i++) {
    if (!a.validity().RowIsValid(i) || !b.validity().RowIsValid(i)) {
      result->validity().SetInvalid(i);
      continue;
    }
    std::string hay = a.StringAt(i).ToString();
    std::string needle = b.StringAt(i).ToString();
    result->data<int8_t>()[i] =
        hay.find(needle) != std::string::npos ? 1 : 0;
  }
  return Status::OK();
}

Status StartsWithImpl(const std::vector<Vector*>& args, idx_t count,
                      Vector* result) {
  const Vector& a = *args[0];
  const Vector& b = *args[1];
  for (idx_t i = 0; i < count; i++) {
    if (!a.validity().RowIsValid(i) || !b.validity().RowIsValid(i)) {
      result->validity().SetInvalid(i);
      continue;
    }
    StringRef s = a.StringAt(i);
    StringRef prefix = b.StringAt(i);
    bool match = s.size >= prefix.size &&
                 std::memcmp(s.data, prefix.data, prefix.size) == 0;
    result->data<int8_t>()[i] = match ? 1 : 0;
  }
  return Status::OK();
}

Status CoalesceImpl(const std::vector<Vector*>& args, idx_t count,
                    Vector* result) {
  for (idx_t i = 0; i < count; i++) {
    bool set = false;
    for (const Vector* arg : args) {
      if (arg->validity().RowIsValid(i)) {
        result->SetValue(i, arg->GetValue(i));
        set = true;
        break;
      }
    }
    if (!set) result->validity().SetInvalid(i);
  }
  return Status::OK();
}

}  // namespace

Result<FunctionRegistry::Resolution> FunctionRegistry::Resolve(
    const std::string& name, const std::vector<TypeId>& arg_types) {
  std::string fn = StringUtil::Lower(name);
  auto arity_error = [&]() {
    return Status::Binder("wrong number of arguments to function '" + fn +
                          "'");
  };
  if (fn == "year" || fn == "month" || fn == "day") {
    if (arg_types.size() != 1) return arity_error();
    Resolution r;
    r.return_type = TypeId::kInteger;
    r.arg_types = {TypeId::kDate};
    r.impl = fn == "year" ? YearImpl : (fn == "month" ? MonthImpl : DayImpl);
    return r;
  }
  if (fn == "length") {
    if (arg_types.size() != 1) return arity_error();
    return Resolution{TypeId::kBigInt, LengthImpl, {TypeId::kVarchar}};
  }
  if (fn == "lower" || fn == "upper") {
    if (arg_types.size() != 1) return arity_error();
    return Resolution{TypeId::kVarchar, fn == "lower" ? LowerImpl : UpperImpl,
                      {TypeId::kVarchar}};
  }
  if (fn == "abs") {
    if (arg_types.size() != 1) return arity_error();
    if (arg_types[0] == TypeId::kDouble) {
      return Resolution{TypeId::kDouble, AbsDoubleImpl, {TypeId::kDouble}};
    }
    return Resolution{TypeId::kBigInt, AbsIntImpl, {TypeId::kBigInt}};
  }
  if (fn == "floor" || fn == "ceil" || fn == "ceiling" || fn == "sqrt") {
    if (arg_types.size() != 1) return arity_error();
    ScalarFunctionImpl impl =
        fn == "floor" ? FloorImpl : (fn == "sqrt" ? SqrtImpl : CeilImpl);
    return Resolution{TypeId::kDouble, impl, {TypeId::kDouble}};
  }
  if (fn == "round") {
    if (arg_types.size() == 1) {
      return Resolution{TypeId::kDouble, RoundImpl,
                        {TypeId::kDouble, TypeId::kInteger}};
    }
    if (arg_types.size() != 2) return arity_error();
    return Resolution{TypeId::kDouble, RoundImpl,
                      {TypeId::kDouble, TypeId::kInteger}};
  }
  if (fn == "substr" || fn == "substring") {
    if (arg_types.size() != 3) return arity_error();
    return Resolution{TypeId::kVarchar, SubstrImpl,
                      {TypeId::kVarchar, TypeId::kInteger, TypeId::kInteger}};
  }
  if (fn == "concat") {
    if (arg_types.empty()) return arity_error();
    Resolution r;
    r.return_type = TypeId::kVarchar;
    r.impl = ConcatImpl;
    r.arg_types.assign(arg_types.size(), TypeId::kVarchar);
    return r;
  }
  if (fn == "contains") {
    if (arg_types.size() != 2) return arity_error();
    return Resolution{TypeId::kBoolean, ContainsImpl,
                      {TypeId::kVarchar, TypeId::kVarchar}};
  }
  if (fn == "starts_with") {
    if (arg_types.size() != 2) return arity_error();
    return Resolution{TypeId::kBoolean, StartsWithImpl,
                      {TypeId::kVarchar, TypeId::kVarchar}};
  }
  if (fn == "coalesce") {
    if (arg_types.empty()) return arity_error();
    TypeId type = arg_types[0];
    for (TypeId t : arg_types) {
      if (t != TypeId::kInvalid) {
        type = t;
        break;
      }
    }
    Resolution r;
    r.return_type = type;
    r.impl = CoalesceImpl;
    r.arg_types.assign(arg_types.size(), type);
    return r;
  }
  return Status::Binder("unknown function '" + fn + "'");
}

std::vector<std::string> FunctionRegistry::FunctionNames() {
  return {"year",  "month",    "day",      "length",      "lower",
          "upper", "abs",      "floor",    "ceil",        "sqrt",
          "round", "substr",   "substring", "concat",     "contains",
          "starts_with", "coalesce"};
}

}  // namespace mallard
