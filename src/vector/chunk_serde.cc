#include "mallard/vector/chunk_serde.h"

namespace mallard {

void SerializeChunk(const DataChunk& chunk, BinaryWriter* writer) {
  writer->WriteU32(static_cast<uint32_t>(chunk.ColumnCount()));
  writer->WriteU32(static_cast<uint32_t>(chunk.size()));
  for (idx_t c = 0; c < chunk.ColumnCount(); c++) {
    const Vector& col = chunk.column(c);
    writer->WriteU8(static_cast<uint8_t>(col.type()));
    // Validity as packed bits for the chunk's cardinality.
    idx_t words = (chunk.size() + 63) / 64;
    for (idx_t w = 0; w < words; w++) {
      uint64_t word = 0;
      for (idx_t b = 0; b < 64 && w * 64 + b < chunk.size(); b++) {
        if (col.validity().RowIsValid(w * 64 + b)) word |= uint64_t(1) << b;
      }
      writer->WriteU64(word);
    }
    if (col.type() == TypeId::kVarchar) {
      for (idx_t i = 0; i < chunk.size(); i++) {
        if (col.validity().RowIsValid(i)) {
          StringRef s = col.StringAt(i);
          writer->WriteU32(s.size);
          writer->WriteBytes(s.data, s.size);
        } else {
          writer->WriteU32(0);
        }
      }
    } else {
      writer->WriteBytes(col.raw_data(), chunk.size() * TypeSize(col.type()));
    }
  }
}

Status DeserializeChunk(BinaryReader* reader, DataChunk* chunk) {
  uint32_t num_columns, count;
  MALLARD_RETURN_NOT_OK(reader->ReadU32(&num_columns));
  MALLARD_RETURN_NOT_OK(reader->ReadU32(&count));
  if (count > kVectorSize) {
    return Status::Corruption("serialized chunk cardinality out of range");
  }
  std::vector<TypeId> types;
  std::vector<std::vector<uint64_t>> validities;
  // First pass impossible without reading in order; read per column fully.
  chunk->Initialize({});
  std::vector<Vector> columns;
  for (uint32_t c = 0; c < num_columns; c++) {
    uint8_t type_raw;
    MALLARD_RETURN_NOT_OK(reader->ReadU8(&type_raw));
    TypeId type = static_cast<TypeId>(type_raw);
    if (TypeSize(type) == 0) {
      return Status::Corruption("serialized chunk has invalid column type");
    }
    types.push_back(type);
    Vector col(type);
    idx_t words = (count + 63) / 64;
    std::vector<uint64_t> validity(words);
    for (idx_t w = 0; w < words; w++) {
      MALLARD_RETURN_NOT_OK(reader->ReadU64(&validity[w]));
    }
    if (type == TypeId::kVarchar) {
      std::string scratch;
      for (idx_t i = 0; i < count; i++) {
        uint32_t len;
        MALLARD_RETURN_NOT_OK(reader->ReadU32(&len));
        bool valid = (validity[i / 64] >> (i % 64)) & 1;
        if (valid) {
          scratch.resize(len);
          MALLARD_RETURN_NOT_OK(reader->ReadBytes(scratch.data(), len));
          col.SetString(i, scratch);
        } else {
          if (len != 0) {
            return Status::Corruption("NULL string with nonzero length");
          }
          col.validity().SetInvalid(i);
        }
      }
    } else {
      MALLARD_RETURN_NOT_OK(
          reader->ReadBytes(col.raw_data(), count * TypeSize(type)));
      for (idx_t i = 0; i < count; i++) {
        col.validity().Set(i, (validity[i / 64] >> (i % 64)) & 1);
      }
    }
    columns.push_back(std::move(col));
  }
  chunk->Initialize(types);
  for (uint32_t c = 0; c < num_columns; c++) {
    chunk->column(c).Reference(columns[c]);
  }
  chunk->SetCardinality(count);
  return Status::OK();
}

}  // namespace mallard
