#include "mallard/vector/vector_hash.h"

#include <cstring>

#include "mallard/common/hash.h"

namespace mallard {

namespace {

// kCombine=false overwrites hashes, kCombine=true mixes into them.
template <typename T, bool kCombine>
void HashFixedLoop(const Vector& input, idx_t count, uint64_t* hashes) {
  const T* data = input.data<T>();
  const ValidityMask& validity = input.validity();
  if (validity.AllValid()) {
    for (idx_t r = 0; r < count; r++) {
      uint64_t h = HashInt(static_cast<uint64_t>(data[r]));
      hashes[r] = kCombine ? HashCombine(hashes[r], h) : h;
    }
    return;
  }
  for (idx_t r = 0; r < count; r++) {
    uint64_t h = validity.RowIsValid(r)
                     ? HashInt(static_cast<uint64_t>(data[r]))
                     : kNullHash;
    hashes[r] = kCombine ? HashCombine(hashes[r], h) : h;
  }
}

template <bool kCombine>
void HashDoubleLoop(const Vector& input, idx_t count, uint64_t* hashes) {
  const double* data = input.data<double>();
  const ValidityMask& validity = input.validity();
  for (idx_t r = 0; r < count; r++) {
    uint64_t h;
    if (validity.RowIsValid(r)) {
      double d = NormalizeDouble(data[r]);
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      h = HashInt(bits);
    } else {
      h = kNullHash;
    }
    hashes[r] = kCombine ? HashCombine(hashes[r], h) : h;
  }
}

template <bool kCombine>
void HashStringLoop(const Vector& input, idx_t count, uint64_t* hashes) {
  const ValidityMask& validity = input.validity();
  if (input.is_dictionary()) {
    // Hash dictionary codes directly: each distinct string is hashed
    // once per segment lifetime (memoized in the dictionary) and rows
    // just gather — no string bytes touched.
    const auto& entry_hashes = input.dictionary().EntryHashes();
    const uint32_t* codes = input.data<uint32_t>();
    for (idx_t r = 0; r < count; r++) {
      uint64_t h =
          validity.RowIsValid(r) ? entry_hashes[codes[r]] : kNullHash;
      hashes[r] = kCombine ? HashCombine(hashes[r], h) : h;
    }
    return;
  }
  const StringRef* data = input.data<StringRef>();
  for (idx_t r = 0; r < count; r++) {
    uint64_t h = validity.RowIsValid(r)
                     ? HashBytes(data[r].data, data[r].size)
                     : kNullHash;
    hashes[r] = kCombine ? HashCombine(hashes[r], h) : h;
  }
}

template <bool kCombine>
void HashTypeDispatch(const Vector& input, idx_t count, uint64_t* hashes) {
  switch (input.type()) {
    case TypeId::kBoolean:
      HashFixedLoop<int8_t, kCombine>(input, count, hashes);
      break;
    case TypeId::kInteger:
    case TypeId::kDate:
      HashFixedLoop<int32_t, kCombine>(input, count, hashes);
      break;
    case TypeId::kBigInt:
    case TypeId::kTimestamp:
      HashFixedLoop<int64_t, kCombine>(input, count, hashes);
      break;
    case TypeId::kDouble:
      HashDoubleLoop<kCombine>(input, count, hashes);
      break;
    case TypeId::kVarchar:
      HashStringLoop<kCombine>(input, count, hashes);
      break;
    default:
      for (idx_t r = 0; r < count; r++) {
        hashes[r] = kCombine ? HashCombine(hashes[r], kNullHash) : kNullHash;
      }
      break;
  }
}

}  // namespace

void VectorHash(const Vector& input, idx_t count, uint64_t* hashes) {
  HashTypeDispatch<false>(input, count, hashes);
}

void VectorHashCombine(const Vector& input, idx_t count, uint64_t* hashes) {
  HashTypeDispatch<true>(input, count, hashes);
}

void HashKeyColumns(const DataChunk& keys, idx_t count, uint64_t* hashes) {
  if (keys.ColumnCount() == 0) {
    for (idx_t r = 0; r < count; r++) hashes[r] = kNullHash;
    return;
  }
  VectorHash(keys.column(0), count, hashes);
  for (idx_t c = 1; c < keys.ColumnCount(); c++) {
    VectorHashCombine(keys.column(c), count, hashes);
  }
}

}  // namespace mallard
