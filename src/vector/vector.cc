#include "mallard/vector/vector.h"

#include <cassert>

#include "mallard/common/hash.h"

namespace mallard {

const std::vector<uint64_t>& VectorDictionary::EntryHashes() const {
  std::call_once(hash_once_, [this] {
    hashes_.resize(entries.size());
    for (size_t i = 0; i < entries.size(); i++) {
      hashes_[i] = HashBytes(entries[i].data, entries[i].size);
    }
  });
  return hashes_;
}

Vector::Vector(TypeId type)
    : type_(type),
      buffer_(std::make_shared<VectorBuffer>(TypeSize(type) * kVectorSize)) {
  data_ = buffer_->data.get();
}

void Vector::Flatten() {
  if (!dict_) return;
  std::shared_ptr<const VectorDictionary> dict = std::move(dict_);
  idx_t rows = dict_rows_;
  dict_rows_ = 0;
  if (buffer_.use_count() > 1) {
    // Another vector still reads codes through this buffer; decode into
    // a fresh one instead of rewriting shared bytes.
    auto fresh = std::make_shared<VectorBuffer>(TypeSize(type_) * kVectorSize);
    const uint32_t* codes = reinterpret_cast<const uint32_t*>(data_);
    StringRef* dst = reinterpret_cast<StringRef*>(fresh->data.get());
    for (idx_t i = 0; i < rows; i++) {
      dst[i] = validity_.RowIsValid(i) ? dict->entries[codes[i]] : StringRef();
    }
    buffer_ = std::move(fresh);
    data_ = buffer_->data.get();
  } else {
    // In-place: a 4-byte code expands into a 16-byte ref, so walk
    // back-to-front (slot i's ref never overwrites an unread code j>i).
    StringRef* dst = reinterpret_cast<StringRef*>(data_);
    const uint32_t* codes = reinterpret_cast<const uint32_t*>(data_);
    for (idx_t i = rows; i-- > 0;) {
      uint32_t code = codes[i];
      dst[i] = validity_.RowIsValid(i) ? dict->entries[code] : StringRef();
    }
  }
  // The refs point into the dictionary arena; pin it to the buffer.
  buffer_->keepalive = std::move(dict);
}

void Vector::SetValue(idx_t row, const Value& value) {
  if (dict_) Flatten();
  if (value.is_null()) {
    validity_.SetInvalid(row);
    return;
  }
  validity_.SetValid(row);
  switch (type_) {
    case TypeId::kBoolean:
      data<int8_t>()[row] = value.GetBoolean() ? 1 : 0;
      break;
    case TypeId::kInteger:
      data<int32_t>()[row] = value.GetInteger();
      break;
    case TypeId::kDate:
      data<int32_t>()[row] = value.GetDate();
      break;
    case TypeId::kBigInt:
      data<int64_t>()[row] = value.GetBigInt();
      break;
    case TypeId::kTimestamp:
      data<int64_t>()[row] = value.GetTimestamp();
      break;
    case TypeId::kDouble:
      data<double>()[row] = value.GetDouble();
      break;
    case TypeId::kVarchar:
      SetString(row, value.GetString());
      break;
    default:
      assert(false && "SetValue on invalid vector type");
  }
}

Value Vector::GetValue(idx_t row) const {
  if (!validity_.RowIsValid(row)) return Value::Null(type_);
  switch (type_) {
    case TypeId::kBoolean:
      return Value::Boolean(data<int8_t>()[row] != 0);
    case TypeId::kInteger:
      return Value::Integer(data<int32_t>()[row]);
    case TypeId::kDate:
      return Value::Date(data<int32_t>()[row]);
    case TypeId::kBigInt:
      return Value::BigInt(data<int64_t>()[row]);
    case TypeId::kTimestamp:
      return Value::Timestamp(data<int64_t>()[row]);
    case TypeId::kDouble:
      return Value::Double(data<double>()[row]);
    case TypeId::kVarchar:
      return Value::Varchar(StringAt(row).ToString());
    default:
      return Value();
  }
}

void Vector::Reference(const Vector& other) {
  type_ = other.type_;
  buffer_ = other.buffer_;
  data_ = other.data_;
  validity_ = other.validity_;
  dict_ = other.dict_;
  dict_rows_ = other.dict_rows_;
}

void Vector::CopyFrom(const Vector& other, idx_t count, idx_t source_offset,
                      idx_t target_offset) {
  assert(type_ == other.type_);
  idx_t width = TypeSize(type_);
  if (type_ == TypeId::kVarchar) {
    if (dict_) Flatten();
    StringRef* dst = data<StringRef>();
    for (idx_t i = 0; i < count; i++) {
      idx_t s = source_offset + i, t = target_offset + i;
      if (other.validity_.RowIsValid(s)) {
        dst[t] = buffer_->heap.AddString(other.StringAt(s));
        validity_.SetValid(t);
      } else {
        validity_.SetInvalid(t);
      }
    }
    return;
  }
  std::memcpy(data_ + target_offset * width,
              other.data_ + source_offset * width, count * width);
  if (other.validity_.AllValid()) {
    if (!validity_.AllValid()) {
      for (idx_t i = 0; i < count; i++) validity_.SetValid(target_offset + i);
    }
  } else {
    for (idx_t i = 0; i < count; i++) {
      validity_.Set(target_offset + i,
                    other.validity_.RowIsValid(source_offset + i));
    }
  }
}

void Vector::CopySelection(const Vector& other, const uint32_t* sel,
                           idx_t count, idx_t target_offset) {
  assert(type_ == other.type_);
  switch (type_) {
    case TypeId::kVarchar: {
      if (dict_) Flatten();
      StringRef* dst = data<StringRef>();
      for (idx_t i = 0; i < count; i++) {
        idx_t s = sel[i], t = target_offset + i;
        if (other.validity_.RowIsValid(s)) {
          dst[t] = buffer_->heap.AddString(other.StringAt(s));
          validity_.SetValid(t);
        } else {
          validity_.SetInvalid(t);
        }
      }
      return;
    }
    case TypeId::kBoolean: {
      const int8_t* src = other.data<int8_t>();
      int8_t* dst = data<int8_t>();
      for (idx_t i = 0; i < count; i++) dst[target_offset + i] = src[sel[i]];
      break;
    }
    case TypeId::kInteger:
    case TypeId::kDate: {
      const int32_t* src = other.data<int32_t>();
      int32_t* dst = data<int32_t>();
      for (idx_t i = 0; i < count; i++) dst[target_offset + i] = src[sel[i]];
      break;
    }
    default: {
      const int64_t* src = other.data<int64_t>();
      int64_t* dst = data<int64_t>();
      for (idx_t i = 0; i < count; i++) dst[target_offset + i] = src[sel[i]];
      break;
    }
  }
  if (other.validity_.AllValid()) {
    if (!validity_.AllValid()) {
      for (idx_t i = 0; i < count; i++) validity_.SetValid(target_offset + i);
    }
  } else {
    for (idx_t i = 0; i < count; i++) {
      validity_.Set(target_offset + i, other.validity_.RowIsValid(sel[i]));
    }
  }
}

void Vector::Reset() {
  if (buffer_.use_count() > 1) {
    // The buffer is still referenced downstream (e.g. a chunk handed to
    // the client zero-copy). Detach instead of overwriting it.
    buffer_ = std::make_shared<VectorBuffer>(TypeSize(type_) * kVectorSize);
    data_ = buffer_->data.get();
  } else if (type_ == TypeId::kVarchar) {
    buffer_->heap.Reset();
    buffer_->keepalive.reset();
  }
  dict_.reset();
  dict_rows_ = 0;
  validity_.SetAllValid();
}

}  // namespace mallard
