#include "mallard/vector/vector.h"

#include <cassert>

namespace mallard {

Vector::Vector(TypeId type)
    : type_(type),
      buffer_(std::make_shared<VectorBuffer>(TypeSize(type) * kVectorSize)) {
  data_ = buffer_->data.get();
}

void Vector::SetValue(idx_t row, const Value& value) {
  if (value.is_null()) {
    validity_.SetInvalid(row);
    return;
  }
  validity_.SetValid(row);
  switch (type_) {
    case TypeId::kBoolean:
      data<int8_t>()[row] = value.GetBoolean() ? 1 : 0;
      break;
    case TypeId::kInteger:
      data<int32_t>()[row] = value.GetInteger();
      break;
    case TypeId::kDate:
      data<int32_t>()[row] = value.GetDate();
      break;
    case TypeId::kBigInt:
      data<int64_t>()[row] = value.GetBigInt();
      break;
    case TypeId::kTimestamp:
      data<int64_t>()[row] = value.GetTimestamp();
      break;
    case TypeId::kDouble:
      data<double>()[row] = value.GetDouble();
      break;
    case TypeId::kVarchar:
      SetString(row, value.GetString());
      break;
    default:
      assert(false && "SetValue on invalid vector type");
  }
}

Value Vector::GetValue(idx_t row) const {
  if (!validity_.RowIsValid(row)) return Value::Null(type_);
  switch (type_) {
    case TypeId::kBoolean:
      return Value::Boolean(data<int8_t>()[row] != 0);
    case TypeId::kInteger:
      return Value::Integer(data<int32_t>()[row]);
    case TypeId::kDate:
      return Value::Date(data<int32_t>()[row]);
    case TypeId::kBigInt:
      return Value::BigInt(data<int64_t>()[row]);
    case TypeId::kTimestamp:
      return Value::Timestamp(data<int64_t>()[row]);
    case TypeId::kDouble:
      return Value::Double(data<double>()[row]);
    case TypeId::kVarchar: {
      const StringRef& s = data<StringRef>()[row];
      return Value::Varchar(s.ToString());
    }
    default:
      return Value();
  }
}

void Vector::Reference(const Vector& other) {
  type_ = other.type_;
  buffer_ = other.buffer_;
  data_ = other.data_;
  validity_ = other.validity_;
}

void Vector::CopyFrom(const Vector& other, idx_t count, idx_t source_offset,
                      idx_t target_offset) {
  assert(type_ == other.type_);
  idx_t width = TypeSize(type_);
  if (type_ == TypeId::kVarchar) {
    const StringRef* src = other.data<StringRef>();
    StringRef* dst = data<StringRef>();
    for (idx_t i = 0; i < count; i++) {
      idx_t s = source_offset + i, t = target_offset + i;
      if (other.validity_.RowIsValid(s)) {
        dst[t] = buffer_->heap.AddString(src[s]);
        validity_.SetValid(t);
      } else {
        validity_.SetInvalid(t);
      }
    }
    return;
  }
  std::memcpy(data_ + target_offset * width,
              other.data_ + source_offset * width, count * width);
  if (other.validity_.AllValid()) {
    if (!validity_.AllValid()) {
      for (idx_t i = 0; i < count; i++) validity_.SetValid(target_offset + i);
    }
  } else {
    for (idx_t i = 0; i < count; i++) {
      validity_.Set(target_offset + i,
                    other.validity_.RowIsValid(source_offset + i));
    }
  }
}

void Vector::CopySelection(const Vector& other, const uint32_t* sel,
                           idx_t count, idx_t target_offset) {
  assert(type_ == other.type_);
  switch (type_) {
    case TypeId::kVarchar: {
      const StringRef* src = other.data<StringRef>();
      StringRef* dst = data<StringRef>();
      for (idx_t i = 0; i < count; i++) {
        idx_t s = sel[i], t = target_offset + i;
        if (other.validity_.RowIsValid(s)) {
          dst[t] = buffer_->heap.AddString(src[s]);
          validity_.SetValid(t);
        } else {
          validity_.SetInvalid(t);
        }
      }
      return;
    }
    case TypeId::kBoolean: {
      const int8_t* src = other.data<int8_t>();
      int8_t* dst = data<int8_t>();
      for (idx_t i = 0; i < count; i++) dst[target_offset + i] = src[sel[i]];
      break;
    }
    case TypeId::kInteger:
    case TypeId::kDate: {
      const int32_t* src = other.data<int32_t>();
      int32_t* dst = data<int32_t>();
      for (idx_t i = 0; i < count; i++) dst[target_offset + i] = src[sel[i]];
      break;
    }
    default: {
      const int64_t* src = other.data<int64_t>();
      int64_t* dst = data<int64_t>();
      for (idx_t i = 0; i < count; i++) dst[target_offset + i] = src[sel[i]];
      break;
    }
  }
  if (other.validity_.AllValid()) {
    if (!validity_.AllValid()) {
      for (idx_t i = 0; i < count; i++) validity_.SetValid(target_offset + i);
    }
  } else {
    for (idx_t i = 0; i < count; i++) {
      validity_.Set(target_offset + i, other.validity_.RowIsValid(sel[i]));
    }
  }
}

void Vector::Reset() {
  if (buffer_.use_count() > 1) {
    // The buffer is still referenced downstream (e.g. a chunk handed to
    // the client zero-copy). Detach instead of overwriting it.
    buffer_ = std::make_shared<VectorBuffer>(TypeSize(type_) * kVectorSize);
    data_ = buffer_->data.get();
  } else if (type_ == TypeId::kVarchar) {
    buffer_->heap.Reset();
  }
  validity_.SetAllValid();
}

}  // namespace mallard
