#include "mallard/vector/data_chunk.h"

#include <algorithm>

namespace mallard {

void DataChunk::Initialize(const std::vector<TypeId>& types) {
  columns_.clear();
  columns_.reserve(types.size());
  for (TypeId type : types) {
    columns_.emplace_back(type);
  }
  count_ = 0;
}

std::vector<TypeId> DataChunk::Types() const {
  std::vector<TypeId> types;
  types.reserve(columns_.size());
  for (const auto& col : columns_) {
    types.push_back(col.type());
  }
  return types;
}

void DataChunk::Reset() {
  for (auto& col : columns_) {
    col.Reset();
  }
  count_ = 0;
}

idx_t DataChunk::Append(const DataChunk& other, idx_t offset) {
  idx_t available = other.size() > offset ? other.size() - offset : 0;
  idx_t space = kVectorSize - count_;
  idx_t to_copy = std::min(available, space);
  if (to_copy == 0) return 0;
  for (idx_t c = 0; c < columns_.size(); c++) {
    columns_[c].CopyFrom(other.column(c), to_copy, offset, count_);
  }
  count_ += to_copy;
  return to_copy;
}

std::string DataChunk::ToString() const {
  std::string result;
  for (idx_t r = 0; r < count_; r++) {
    for (idx_t c = 0; c < columns_.size(); c++) {
      if (c > 0) result += "\t";
      result += GetValue(c, r).ToString();
    }
    result += "\n";
  }
  return result;
}

}  // namespace mallard
