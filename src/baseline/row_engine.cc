#include "mallard/baseline/row_engine.h"

#include "mallard/expression/expression_executor.h"

namespace mallard {
namespace baseline {

RowScan::RowScan(DataTable* table, Transaction* txn,
                 std::vector<idx_t> column_ids)
    : table_(table), txn_(txn), column_ids_(std::move(column_ids)) {}

Result<bool> RowScan::Next(std::vector<Value>* row) {
  if (!initialized_) {
    table_->InitializeScan(&state_, column_ids_);
    std::vector<TypeId> types;
    for (idx_t id : column_ids_) {
      types.push_back(table_->ColumnTypes()[id]);
    }
    chunk_.Initialize(types);
    position_ = 0;
    chunk_.SetCardinality(0);
    initialized_ = true;
  }
  while (true) {
    if (position_ < chunk_.size()) {
      row->clear();
      for (idx_t c = 0; c < chunk_.ColumnCount(); c++) {
        row->push_back(chunk_.GetValue(c, position_));
      }
      position_++;
      return true;
    }
    if (!table_->Scan(*txn_, &state_, &chunk_)) {
      if (!state_.error.ok()) return std::move(state_.error);
      return false;
    }
    position_ = 0;
  }
}

Result<bool> RowFilter::Next(std::vector<Value>* row) {
  while (true) {
    MALLARD_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    MALLARD_ASSIGN_OR_RETURN(
        Value v, ExpressionExecutor::ExecuteScalar(*predicate_, *row));
    if (!v.is_null() && v.GetBoolean()) return true;
  }
}

Result<bool> RowProject::Next(std::vector<Value>* row) {
  MALLARD_ASSIGN_OR_RETURN(bool has, child_->Next(&input_row_));
  if (!has) return false;
  row->clear();
  for (const auto& expr : exprs_) {
    MALLARD_ASSIGN_OR_RETURN(
        Value v, ExpressionExecutor::ExecuteScalar(*expr, input_row_));
    row->push_back(std::move(v));
  }
  return true;
}

Result<bool> RowHashAggregate::Next(std::vector<Value>* row) {
  if (!sunk_) {
    std::vector<Value> input;
    while (true) {
      MALLARD_ASSIGN_OR_RETURN(bool has, child_->Next(&input));
      if (!has) break;
      std::vector<Value> key;
      for (const auto& g : groups_) {
        MALLARD_ASSIGN_OR_RETURN(
            Value v, ExpressionExecutor::ExecuteScalar(*g, input));
        key.push_back(std::move(v));
      }
      auto [it, inserted] =
          groups_map_.try_emplace(std::move(key), aggregates_.size());
      for (idx_t a = 0; a < aggregates_.size(); a++) {
        Value v;
        if (aggregates_[a].arg) {
          MALLARD_ASSIGN_OR_RETURN(
              v, ExpressionExecutor::ExecuteScalar(*aggregates_[a].arg,
                                                   input));
        }
        AggregateFunction::UpdateValue(aggregates_[a].type, v,
                                       &it->second[a]);
      }
    }
    if (groups_.empty() && groups_map_.empty()) {
      // Ungrouped aggregate over empty input still yields one row.
      groups_map_.try_emplace({}, aggregates_.size());
    }
    output_it_ = groups_map_.begin();
    sunk_ = true;
  }
  if (output_it_ == groups_map_.end()) return false;
  row->clear();
  for (const auto& v : output_it_->first) row->push_back(v);
  for (idx_t a = 0; a < aggregates_.size(); a++) {
    row->push_back(AggregateFunction::Finalize(aggregates_[a].type,
                                               aggregates_[a].return_type,
                                               output_it_->second[a]));
  }
  ++output_it_;
  return true;
}

}  // namespace baseline
}  // namespace mallard
