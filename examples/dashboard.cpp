// Dashboard scenario (paper section 2): ETL writer threads continuously
// append and bulk-update metrics while reader threads concurrently run
// the OLAP aggregations that would drive visualizations. MVCC gives every
// reader a consistent snapshot without blocking the writers.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

int main() {
  using namespace mallard;
  auto db = Database::Open(":memory:");
  {
    Connection con(db->get());
    (void)con.Query(
        "CREATE TABLE events (region INTEGER, status VARCHAR, "
        "amount DOUBLE)");
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ingested{0}, refreshes{0}, recodes{0};

  // Ingest thread: appends batches through the bulk Appender.
  std::thread ingest([&] {
    auto app = Appender::Create(db->get(), "events");
    if (!app.ok()) return;
    uint64_t n = 0;
    while (!stop.load()) {
      for (int i = 0; i < 500; i++) {
        (*app)->Append(static_cast<int32_t>(n % 8))
            .Append(n % 13 == 0 ? "error" : "ok")
            .Append((n % 97) * 1.5);
        if (!(*app)->EndRow().ok()) return;
        n++;
      }
      if (!(*app)->Flush().ok()) return;
      ingested.store(n);
    }
  });

  // Wrangler thread: periodic bulk recodes (ETL on live data).
  std::thread wrangler([&] {
    Connection con(db->get());
    while (!stop.load()) {
      auto r = con.Query(
          "UPDATE events SET status = 'failed' WHERE status = 'error'");
      if (r.ok()) recodes++;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  // Dashboard threads: consistent aggregate snapshots.
  std::vector<std::thread> dashboards;
  for (int d = 0; d < 2; d++) {
    dashboards.emplace_back([&] {
      Connection con(db->get());
      while (!stop.load()) {
        auto r = con.Query(
            "SELECT region, count(*) AS events, sum(amount) AS volume, "
            "sum(CASE WHEN status = 'failed' THEN 1 ELSE 0 END) AS fails "
            "FROM events GROUP BY region ORDER BY region");
        if (r.ok()) refreshes++;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true);
  ingest.join();
  wrangler.join();
  for (auto& t : dashboards) t.join();

  Connection con(db->get());
  auto final_view = con.Query(
      "SELECT region, count(*) AS events, "
      "sum(CASE WHEN status = 'failed' THEN 1 ELSE 0 END) AS fails "
      "FROM events GROUP BY region ORDER BY region");
  std::printf("after 2s of concurrent ETL + OLAP:\n");
  std::printf("  rows ingested:        %llu\n",
              static_cast<unsigned long long>(ingested.load()));
  std::printf("  bulk recodes applied: %llu\n",
              static_cast<unsigned long long>(recodes.load()));
  std::printf("  dashboard refreshes:  %llu\n\n",
              static_cast<unsigned long long>(refreshes.load()));
  if (final_view.ok()) {
    std::printf("%s", (*final_view)->ToString().c_str());
  }
  return 0;
}
