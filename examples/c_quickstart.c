/*
 * C quickstart: the embedded-analytics loop through the stable C ABI.
 *
 * This file is compiled as real C99 (not C++) — it doubles as the
 * proof that mallard.h stays C-clean. It walks the whole surface:
 * open -> connect -> DDL/DML -> prepared insert loop -> ad-hoc query
 * -> value accessors -> streaming fetch -> teardown, with the C error
 * model (state returns + mallard_*_error) used throughout.
 */
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

#include "mallard/c_api/mallard.h"

static void die(const char *context, const char *message) {
  fprintf(stderr, "%s: %s\n", context, message ? message : "unknown error");
  exit(1);
}

int main(void) {
  printf("%s\n", mallard_version());

  /* ":memory:" for a transient database; a file path for a persistent
   * single-file database (plus a .wal side file). */
  mallard_database *db = NULL;
  if (mallard_open(":memory:", &db) != MALLARD_SUCCESS) {
    die("open", NULL);
  }
  mallard_connection *con = NULL;
  if (mallard_connect(db, &con) != MALLARD_SUCCESS) {
    die("connect", NULL);
  }

  /* Ad-hoc statements: a result handle is produced even on failure and
   * must always be destroyed. */
  mallard_result *res = NULL;
  if (mallard_query(con,
                    "CREATE TABLE readings (sensor VARCHAR, ts TIMESTAMP, "
                    "value DOUBLE)",
                    &res) != MALLARD_SUCCESS) {
    die("create table", mallard_result_error(res));
  }
  mallard_destroy_result(&res);

  /* Prepared statements: parse + plan once, execute many times — the
   * edge-sensor ingest loop at in-process call cost. */
  mallard_prepared_statement *insert = NULL;
  if (mallard_prepare(con, "INSERT INTO readings VALUES ($1, $2, $3)",
                      &insert) != MALLARD_SUCCESS) {
    die("prepare insert", mallard_prepare_error(insert));
  }
  printf("insert has %d parameters\n", (int)mallard_nparams(insert));
  for (int i = 0; i < 1000; i++) {
    /* Binds cast eagerly to the inferred parameter type: the ISO string
     * below becomes a TIMESTAMP at bind time, not mid-query. */
    char ts[32];
    snprintf(ts, sizeof(ts), "2026-07-31 12:%02d:%02d", (i / 60) % 60,
             i % 60);
    if (mallard_bind_varchar(insert, 1, (i % 2) ? "s_temp" : "s_hum") !=
            MALLARD_SUCCESS ||
        mallard_bind_varchar(insert, 2, ts) != MALLARD_SUCCESS ||
        mallard_bind_double(insert, 3, 20.0 + (double)(i % 50) / 10.0) !=
            MALLARD_SUCCESS) {
      die("bind", mallard_prepare_error(insert));
    }
    mallard_result *ins = NULL;
    if (mallard_execute_prepared(insert, &ins) != MALLARD_SUCCESS) {
      die("insert", mallard_result_error(ins));
    }
    mallard_destroy_result(&ins);
  }
  mallard_destroy_prepare(&insert);

  /* Materialized query + value accessors. */
  if (mallard_query(con,
                    "SELECT sensor, count(*) AS n, avg(value) AS avg_value "
                    "FROM readings GROUP BY sensor ORDER BY sensor",
                    &res) != MALLARD_SUCCESS) {
    die("aggregate", mallard_result_error(res));
  }
  uint64_t rows = mallard_row_count(res);
  uint64_t cols = mallard_column_count(res);
  printf("aggregate: %d rows x %d cols\n", (int)rows, (int)cols);
  for (uint64_t c = 0; c < cols; c++) {
    printf("%s%s", c ? "\t" : "", mallard_column_name(res, c));
  }
  printf("\n");
  for (uint64_t r = 0; r < rows; r++) {
    printf("%s\t%lld\t%.3f\n", mallard_value_varchar(res, 0, r),
           (long long)mallard_value_int64(res, 1, r),
           mallard_value_double(res, 2, r));
  }
  mallard_destroy_result(&res);

  /* Parameterized lookup, re-executed with fresh bindings. */
  mallard_prepared_statement *lookup = NULL;
  if (mallard_prepare(con,
                      "SELECT max(value) FROM readings WHERE sensor = ?",
                      &lookup) != MALLARD_SUCCESS) {
    die("prepare lookup", mallard_prepare_error(lookup));
  }
  const char *sensors[] = {"s_temp", "s_hum"};
  for (int s = 0; s < 2; s++) {
    mallard_bind_varchar(lookup, 1, sensors[s]);
    mallard_result *r = NULL;
    if (mallard_execute_prepared(lookup, &r) != MALLARD_SUCCESS) {
      die("lookup", mallard_result_error(r));
    }
    printf("max(%s) = %.1f\n", sensors[s], mallard_value_double(r, 0, 0));
    mallard_destroy_result(&r);
  }

  /* Streaming: chunks are pulled straight from the plan; each fetched
   * chunk is a small result handle with the same accessors. */
  mallard_prepared_statement *scan = NULL;
  if (mallard_prepare(con, "SELECT value FROM readings WHERE value > $1",
                      &scan) != MALLARD_SUCCESS) {
    die("prepare scan", mallard_prepare_error(scan));
  }
  mallard_bind_double(scan, 1, 22.5);
  mallard_stream *stream = NULL;
  if (mallard_execute_prepared_streaming(scan, &stream) != MALLARD_SUCCESS) {
    die("stream", mallard_prepare_error(scan));
  }
  uint64_t streamed = 0;
  double total = 0.0;
  for (;;) {
    mallard_result *chunk = NULL;
    if (mallard_stream_fetch_chunk(stream, &chunk) != MALLARD_SUCCESS) {
      die("fetch", mallard_stream_error(stream));
    }
    if (chunk == NULL) break; /* exhausted */
    uint64_t n = mallard_row_count(chunk);
    for (uint64_t i = 0; i < n; i++) {
      total += mallard_value_double(chunk, 0, i);
    }
    streamed += n;
    mallard_destroy_result(&chunk);
  }
  mallard_destroy_stream(&stream);
  mallard_destroy_prepare(&scan);
  printf("streamed %d hot readings, sum %.1f\n", (int)streamed, total);

  /* The C error model: failures come back as states + messages, never
   * as crashes — even on closed handles. */
  if (mallard_query(con, "SELECT FROM FROM", &res) == MALLARD_SUCCESS) {
    die("error demo", "bad SQL unexpectedly succeeded");
  }
  printf("bad SQL reported: %s\n", mallard_result_error(res));
  mallard_destroy_result(&res);

  mallard_disconnect(&con);
  if (mallard_bind_double(lookup, 1, 1.0) != MALLARD_ERROR) {
    die("error demo", "bind after disconnect unexpectedly succeeded");
  }
  printf("bind after disconnect reported: %s\n",
         mallard_prepare_error(lookup));
  mallard_destroy_prepare(&lookup);

  mallard_close(&db);
  printf("done\n");
  return 0;
}
