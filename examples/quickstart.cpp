// Quickstart: open an embedded database, run DDL/DML/queries, and
// stream a result — the 60-second tour of the public API.

#include <cstdio>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"

int main() {
  using namespace mallard;
  // ":memory:" for a transient database; a file path for a persistent
  // single-file database (plus a .wal side file).
  auto db = Database::Open(":memory:");
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Connection con(db->get());

  auto exec = [&](const std::string& sql) {
    auto result = con.Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "error in %s\n  -> %s\n", sql.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*result);
  };

  exec("CREATE TABLE weather (city VARCHAR, day DATE, temp DOUBLE)");
  exec("INSERT INTO weather VALUES "
       "('Amsterdam', DATE '2026-06-01', 18.5), "
       "('Amsterdam', DATE '2026-06-02', 21.0), "
       "('Utrecht',   DATE '2026-06-01', 19.2), "
       "('Utrecht',   DATE '2026-06-02', 22.4)");

  auto result = exec(
      "SELECT city, count(*) AS days, avg(temp) AS avg_temp "
      "FROM weather GROUP BY city ORDER BY city");
  std::printf("%s\n", result->ToString().c_str());

  // Streaming (zero-copy) access: the application pulls chunks straight
  // from the execution engine.
  auto stream = con.SendQuery("SELECT temp FROM weather WHERE temp > 19");
  if (stream.ok()) {
    double max_temp = 0;
    while (true) {
      auto chunk = (*stream)->Fetch();
      if (!chunk.ok() || !*chunk) break;
      const double* temps = (*chunk)->column(0).data<double>();
      for (idx_t i = 0; i < (*chunk)->size(); i++) {
        if (temps[i] > max_temp) max_temp = temps[i];
      }
    }
    std::printf("hottest reading above 19C: %.1f\n", max_temp);
  }
  return 0;
}
