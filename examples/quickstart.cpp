// Quickstart: open an embedded database, run DDL/DML/queries, use
// prepared statements for repeated parameterized queries, and stream a
// result — the 60-second tour of the public API.

#include <cstdio>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/main/prepared_statement.h"

int main() {
  using namespace mallard;
  // ":memory:" for a transient database; a file path for a persistent
  // single-file database (plus a .wal side file).
  auto db = Database::Open(":memory:");
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Connection con(db->get());

  auto exec = [&](const std::string& sql) {
    auto result = con.Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "error in %s\n  -> %s\n", sql.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*result);
  };

  exec("CREATE TABLE weather (city VARCHAR, day DATE, temp DOUBLE)");

  // Prepared statements: parse + bind + plan once, execute many times.
  // This is the API for repeated small queries (dashboards, sensors) —
  // each Execute() skips the whole SQL front-end.
  auto insert = con.Prepare("INSERT INTO weather VALUES ($1, $2, $3)");
  if (!insert.ok()) {
    std::fprintf(stderr, "%s\n", insert.status().ToString().c_str());
    return 1;
  }
  struct Row {
    const char* city;
    const char* day;
    double temp;
  };
  for (const Row& row : {Row{"Amsterdam", "2026-06-01", 18.5},
                         Row{"Amsterdam", "2026-06-02", 21.0},
                         Row{"Utrecht", "2026-06-01", 19.2},
                         Row{"Utrecht", "2026-06-02", 22.4}}) {
    (*insert)->Bind(1, row.city);
    (*insert)->Bind(2, row.day);  // VARCHAR casts to DATE at bind time
    (*insert)->Bind(3, row.temp);
    if (!(*insert)->Execute().ok()) return 1;
  }

  auto result = exec(
      "SELECT city, count(*) AS days, avg(temp) AS avg_temp "
      "FROM weather GROUP BY city ORDER BY city");
  std::printf("%s\n", result->ToString().c_str());

  // Parameterized lookup, re-executed with different bindings.
  auto lookup = con.Prepare(
      "SELECT avg(temp) FROM weather WHERE city = ? AND temp > ?");
  if (!lookup.ok()) return 1;
  for (const char* city : {"Amsterdam", "Utrecht"}) {
    (*lookup)->Bind(1, city);
    (*lookup)->Bind(2, 19.0);
    auto r = (*lookup)->Execute();
    if (!r.ok()) return 1;
    std::printf("%s, readings above 19C: avg %.2f\n", city,
                (*r)->GetValue(0, 0).GetDouble());
  }

  // Streaming (zero-copy) access: the application pulls chunks straight
  // from the execution engine — here through the prepared statement.
  (*lookup)->Bind(1, "Amsterdam");
  auto stream = con.SendQuery("SELECT temp FROM weather WHERE temp > 19");
  if (stream.ok()) {
    double max_temp = 0;
    while (true) {
      auto chunk = (*stream)->Fetch();
      if (!chunk.ok() || !*chunk) break;
      const double* temps = (*chunk)->column(0).data<double>();
      for (idx_t i = 0; i < (*chunk)->size(); i++) {
        if (temps[i] > max_temp) max_temp = temps[i];
      }
    }
    std::printf("hottest reading above 19C: %.1f\n", max_temp);
  }
  return 0;
}
