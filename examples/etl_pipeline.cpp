// ETL pipeline (paper section 2): scan a raw CSV directly, load it into
// a persistent table, recode sentinel missing values to NULL with a bulk
// UPDATE, derive features, and export the cleaned result — all inside
// the embedded engine with transactional guarantees.

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"

int main() {
  using namespace mallard;
  std::string csv = "/tmp/mallard_example_sensors.csv";
  std::string cleaned = "/tmp/mallard_example_cleaned.csv";
  {
    // A "raw export" with -999 encoding missing readings — the paper's
    // canonical wrangling example.
    std::ofstream out(csv);
    out << "sensor,day,reading\n";
    for (int day = 1; day <= 28; day++) {
      for (int sensor = 0; sensor < 40; sensor++) {
        int reading =
            ((sensor * 7 + day * 13) % 9 == 0) ? -999 : 15 + (sensor + day) % 20;
        out << sensor << ",2026-02-" << (day < 10 ? "0" : "") << day << ","
            << reading << "\n";
      }
    }
  }

  auto db = Database::Open(":memory:");
  Connection con(db->get());
  auto exec = [&](const std::string& sql) {
    auto r = con.Query(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*r);
  };

  // 1. Explore the raw file without loading it.
  auto preview = exec("SELECT count(*) AS rows, min(reading), max(reading) "
                      "FROM read_csv('" + csv + "')");
  std::printf("raw file:\n%s\n", preview->ToString().c_str());

  // 2. Load into a managed table (CREATE TABLE AS over the CSV scan).
  exec("CREATE TABLE sensors AS SELECT sensor, day, reading FROM read_csv('" +
       csv + "')");

  // 3. The wrangling step: -999 -> NULL, as one bulk update.
  auto updated = exec("UPDATE sensors SET reading = NULL "
                      "WHERE reading = -999");
  std::printf("recoded %s missing readings to NULL\n\n",
              updated->GetValue(0, 0).ToString().c_str());

  // 4. Typed analytics over the cleaned data.
  auto per_sensor = exec(
      "SELECT sensor, count(*) AS n, count(reading) AS present, "
      "avg(reading) AS avg_reading "
      "FROM sensors GROUP BY sensor "
      "HAVING count(*) <> count(reading) "
      "ORDER BY sensor LIMIT 5");
  std::printf("sensors with missing data (first 5):\n%s\n",
              per_sensor->ToString().c_str());

  // 5. Export the cleaned table.
  exec("COPY sensors TO '" + cleaned + "'");
  std::printf("cleaned data exported to %s\n", cleaned.c_str());

  ::unlink(csv.c_str());
  ::unlink(cleaned.c_str());
  return 0;
}
