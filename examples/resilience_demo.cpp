// Resilience demo (paper section 3): consumer hardware fails silently.
// This example (1) flips a single bit in the database file and shows the
// checksum layer refusing to serve corrupted data, and (2) runs the
// memory-test suite against a simulated faulty DIMM and shows the buffer
// manager quarantining bad regions.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "mallard/main/connection.h"
#include "mallard/main/database.h"
#include "mallard/resilience/memtest.h"
#include "mallard/storage/block_manager.h"
#include "mallard/storage/buffer_manager.h"

int main() {
  using namespace mallard;
  std::string path =
      "/tmp/mallard_resilience_demo_" + std::to_string(::getpid());
  RemoveFile(path);
  RemoveFile(path + ".wal");

  std::printf("--- part 1: silent disk corruption ---\n");
  {
    auto db = Database::Open(path);
    Connection con(db->get());
    (void)con.Query("CREATE TABLE ledger (id INTEGER, balance DOUBLE)");
    (void)con.Query(
        "INSERT INTO ledger VALUES (1, 100.0), (2, 250.5), (3, 42.0)");
    // Database closes cleanly: data checkpointed into checksummed blocks.
  }
  std::printf("wrote 3 rows, closed the database cleanly\n");
  {
    bool created;
    auto bm = BlockManager::Open(path, true, &created);
    (void)(*bm)->CorruptBlockOnDisk((*bm)->header().meta_block, 777777);
    std::printf("flipped ONE bit in the database file (simulated silent "
                "disk corruption)\n");
  }
  {
    auto db = Database::Open(path);
    if (db.ok()) {
      std::printf("!! corruption was NOT detected\n");
    } else {
      std::printf("reopen refused: %s\n", db.status().ToString().c_str());
      std::printf("-> corrupted balances can never silently reach the "
                  "application\n");
    }
  }
  RemoveFile(path);
  RemoveFile(path + ".wal");

  std::printf("\n--- part 2: broken DRAM ---\n");
  {
    SimulatedDimm dimm(1 << 20);
    MemoryFault fault;
    fault.kind = MemoryFault::Kind::kStuckAtOne;
    fault.word_index = 31337;
    fault.bit = 5;
    dimm.AddFault(fault);
    MemtestResult r = WalkingBitsTest(dimm);
    std::printf("walking-bits test on a DIMM with one stuck cell: %s "
                "(flagged word %llu)\n",
                r.passed ? "PASSED (!!)" : "FAILED as expected",
                r.bad_words.empty()
                    ? 0ULL
                    : static_cast<unsigned long long>(r.bad_words[0]));
  }
  {
    BufferManager bm(64 << 20, "");
    bm.EnableAllocationTesting(true);
    bm.SetSimulatedBadRegionProbability(0.3, 2);
    for (int i = 0; i < 32; i++) {
      auto handle = bm.Allocate(512 << 10);
      (void)handle;
    }
    auto stats = bm.GetStats();
    std::printf("buffer manager served 32 allocations on flaky RAM: "
                "%llu bad regions quarantined (%.1f MB withheld from "
                "use)\n",
                static_cast<unsigned long long>(
                    stats.quarantined_allocations),
                stats.quarantined_bytes / 1e6);
    std::printf("-> queries keep running on the remaining healthy "
                "memory\n");
  }
  return 0;
}
