// Edge analytics (paper section 1): an edge node collects high-frequency
// sensor data locally and pre-aggregates it inside the embedded database,
// so only compact summaries leave the device — saving radio bandwidth and
// keeping raw data (and privacy) local.

#include <cstdio>

#include "mallard/main/appender.h"
#include "mallard/main/connection.h"
#include "mallard/main/database.h"

int main() {
  using namespace mallard;
  // On a real edge device this would be a persistent file on flash.
  auto db = Database::Open(":memory:");
  Connection con(db->get());
  (void)con.Query(
      "CREATE TABLE readings (ts BIGINT, sensor INTEGER, value DOUBLE)");

  // Simulate 24h of 1Hz readings from 16 sensors (~1.4M rows).
  const int64_t kSeconds = 24 * 3600;
  const int kSensors = 16;
  {
    auto app = Appender::Create(db->get(), "readings");
    DataChunk chunk;
    chunk.Initialize({TypeId::kBigInt, TypeId::kInteger, TypeId::kDouble});
    idx_t fill = 0;
    for (int64_t ts = 0; ts < kSeconds; ts += kSensors) {
      for (int s = 0; s < kSensors; s++) {
        chunk.column(0).data<int64_t>()[fill] = ts;
        chunk.column(1).data<int32_t>()[fill] = s;
        // A daily temperature curve plus sensor-specific noise.
        chunk.column(2).data<double>()[fill] =
            20.0 + 8.0 * ((ts % 86400) / 86400.0) + (s * 37 + ts) % 7 * 0.1;
        if (++fill == kVectorSize) {
          chunk.SetCardinality(fill);
          if (!(*app)->AppendChunk(chunk).ok()) return 1;
          chunk.Reset();
          fill = 0;
        }
      }
    }
    chunk.SetCardinality(fill);
    if (fill > 0 && !(*app)->AppendChunk(chunk).ok()) return 1;
    (void)(*app)->Close();
  }

  auto raw = con.Query("SELECT count(*) FROM readings");
  int64_t raw_rows = (*raw)->GetValue(0, 0).GetBigInt();

  // Pre-aggregate: hourly per-sensor summaries — what actually gets
  // uplinked to the central service.
  auto summary = con.Query(
      "CREATE TABLE uplink AS "
      "SELECT ts / 3600 AS hour, sensor, count(*) AS n, "
      "       min(value) AS lo, avg(value) AS mean, max(value) AS hi "
      "FROM readings GROUP BY ts / 3600, sensor");
  if (!summary.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  auto uplink = con.Query("SELECT count(*) FROM uplink");
  int64_t uplink_rows = (*uplink)->GetValue(0, 0).GetBigInt();

  std::printf("edge pre-aggregation:\n");
  std::printf("  raw readings stored locally : %lld rows\n",
              static_cast<long long>(raw_rows));
  std::printf("  summary rows to transmit    : %lld rows\n",
              static_cast<long long>(uplink_rows));
  std::printf("  uplink volume reduction     : %.0fx\n\n",
              static_cast<double>(raw_rows) / uplink_rows);
  auto peek = con.Query(
      "SELECT hour, sensor, n, mean FROM uplink "
      "WHERE sensor = 0 ORDER BY hour LIMIT 5");
  std::printf("first summaries for sensor 0:\n%s", (*peek)->ToString().c_str());
  return 0;
}
